"""Shared tuning-history service.

The production layer of GPTune's "archive and reuse" goal (Sec. 1, goal 3):
a sharded append-only record store safe for concurrent campaigns
(:mod:`~repro.service.store`) with an etag-keyed hot-shard read cache, a
group-commit write batcher with bounded-queue backpressure
(:mod:`~repro.service.batch`), a cache of fitted surrogate hyperparameters
(:mod:`~repro.service.modelcache`), nearest-task queries feeding transfer
learning (:mod:`~repro.service.query`), a stdlib HTTP server/client pair
for crowd tuning across machines (:mod:`~repro.service.server`,
:mod:`~repro.service.client`), and consistent-hash routing over N server
processes (:mod:`~repro.service.router`).  See ``docs/SERVICE.md``.
"""

from .batch import BackpressureError, WriteBatcher
from .client import ServiceClient, ServiceError, StaleEtagError
from .modelcache import CachedFit, SurrogateCache
from .query import archive_source, group_by_task, nearest_tasks, source_data_from_records
from .router import HashRing, RouterClient, ShardSupervisor, rebalance_stores, shard_id
from .server import TuningHistoryServer, make_server, serve
from .store import (
    ShardLock,
    ShardReadCache,
    ShardedStore,
    canonical_payload,
    content_fingerprint,
)

__all__ = [
    "BackpressureError",
    "CachedFit",
    "HashRing",
    "RouterClient",
    "ServiceClient",
    "ServiceError",
    "ShardLock",
    "ShardReadCache",
    "ShardSupervisor",
    "ShardedStore",
    "StaleEtagError",
    "SurrogateCache",
    "TuningHistoryServer",
    "WriteBatcher",
    "archive_source",
    "canonical_payload",
    "content_fingerprint",
    "group_by_task",
    "make_server",
    "nearest_tasks",
    "rebalance_stores",
    "serve",
    "shard_id",
    "source_data_from_records",
]
