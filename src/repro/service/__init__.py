"""Shared tuning-history service.

The production layer of GPTune's "archive and reuse" goal (Sec. 1, goal 3):
a sharded append-only record store safe for concurrent campaigns
(:mod:`~repro.service.store`), a cache of fitted surrogate hyperparameters
(:mod:`~repro.service.modelcache`), nearest-task queries feeding transfer
learning (:mod:`~repro.service.query`), and a stdlib HTTP server/client pair
for crowd tuning across machines (:mod:`~repro.service.server`,
:mod:`~repro.service.client`).  See ``docs/SERVICE.md``.
"""

from .client import ServiceClient, ServiceError, StaleEtagError
from .modelcache import CachedFit, SurrogateCache
from .query import archive_source, group_by_task, nearest_tasks, source_data_from_records
from .server import TuningHistoryServer, make_server, serve
from .store import ShardedStore, ShardLock, canonical_payload, content_fingerprint

__all__ = [
    "CachedFit",
    "ServiceClient",
    "ServiceError",
    "ShardLock",
    "ShardedStore",
    "StaleEtagError",
    "SurrogateCache",
    "TuningHistoryServer",
    "archive_source",
    "canonical_payload",
    "content_fingerprint",
    "group_by_task",
    "make_server",
    "nearest_tasks",
    "serve",
    "source_data_from_records",
]
