"""Write batching (group commit) for the tuning-history service.

The seed append path pays one lock acquire + one ``write`` + one ``fsync``
per request — correct, but the fsync dominates and serializes every writer
behind the shard lock.  Under crowd-tuning load (many campaigns posting one
evaluation at a time) almost all of that work is redundant: appends to the
same shard can share a single durable commit.

:class:`WriteBatcher` implements the classic group-commit shape:

* :meth:`submit` normalizes and validates the records (malformed input is
  rejected *before* it can poison a batch), enqueues them on the shard's
  pending list, and blocks until a flush commits them;
* a single background flusher thread coalesces everything queued per shard
  into **one** ``ShardedStore.append`` call — one lock round-trip, one
  contiguous write of complete lines, one fsync — once the shard's oldest
  pending entry is ``flush_interval`` old or its queued bytes exceed
  ``flush_bytes``;
* the queue is **bounded**: when ``max_pending`` records are already
  waiting, :meth:`submit` raises :class:`BackpressureError` immediately
  instead of letting latency grow without bound — the HTTP layer turns
  that into ``429 Too Many Requests`` + ``Retry-After``;
* crash safety is inherited from the store: a batch is written as one blob
  of complete lines, so a torn tail is quarantined exactly like a torn
  single-record append, and compaction drops it.

Batches are atomic from the submitters' point of view: either the flush's
``append`` returns and every waiter gets its written rids plus the
post-flush etag, or it raises and every waiter in that batch sees the same
error while the shard file stays untouched (records accepted into the
queue but not yet flushed are *not yet durable* — the service acks a write
only after its flush, so a crash between queue accept and flush loses
nothing that was acknowledged).

Optimistic-concurrency appends (``If-Match``) cannot join a group commit —
their etag check must be atomic with their write — so the server routes
them through :meth:`exclusive`, which drains the shard's queue and holds
its flush mutex while the caller does the check-and-append.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["BackpressureError", "WriteBatcher", "BATCH_SIZE_BUCKETS"]

#: Histogram buckets for records-per-commit (count scale, not seconds).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0
)


class BackpressureError(RuntimeError):
    """The write queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


class _Entry:
    """One submitter's records plus the slot its outcome lands in."""

    __slots__ = ("rows", "done", "rids", "etag", "error")

    def __init__(self, rows: List[Dict[str, Any]]):
        self.rows = rows
        self.done = threading.Event()
        self.rids: List[str] = []
        self.etag: Optional[str] = None
        self.error: Optional[BaseException] = None

    def finish(self, rids: List[str], etag: Optional[str], error: Optional[BaseException]) -> None:
        self.rids, self.etag, self.error = rids, etag, error
        self.done.set()


class _ShardQueue:
    """Pending entries of one shard plus its flush mutex."""

    __slots__ = ("entries", "n_records", "first_at", "flush_mutex")

    def __init__(self):
        self.entries: List[_Entry] = []
        self.n_records = 0
        self.first_at: Optional[float] = None
        # serializes flushes with `exclusive()` check-and-append sections
        self.flush_mutex = threading.Lock()


class WriteBatcher:
    """Group-commit front end over one :class:`~repro.service.store.ShardedStore`.

    Parameters
    ----------
    store:
        The sharded store commits land in.
    flush_interval:
        Maximum seconds a pending entry waits before its shard is flushed.
        This is the group-commit window: everything submitted within it
        shares one lock + write + fsync.
    flush_bytes:
        Flush a shard early once its queued JSON exceeds this many bytes.
    max_pending:
        Bound on queued-but-unflushed records across all shards; beyond it
        :meth:`submit` raises :class:`BackpressureError`.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` receiving
        ``repro_service_write_queue_depth`` (gauge),
        ``repro_service_batch_records`` / ``repro_service_flush_seconds``
        (histograms) and ``repro_service_commits_total`` /
        ``repro_service_committed_records_total`` (counters).
    """

    def __init__(
        self,
        store,
        flush_interval: float = 0.005,
        flush_bytes: int = 256 * 1024,
        max_pending: int = 4096,
        metrics=None,
    ):
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if flush_bytes < 1 or max_pending < 1:
            raise ValueError("flush_bytes and max_pending must be >= 1")
        self.store = store
        self.flush_interval = float(flush_interval)
        self.flush_bytes = int(flush_bytes)
        self.max_pending = int(max_pending)
        self.metrics = metrics
        self.retry_after = max(0.05, 2.0 * self.flush_interval)
        self._cond = threading.Condition()
        self._queues: Dict[str, _ShardQueue] = {}
        self._pending = 0  # queued records across all shards
        self._bytes: Dict[str, int] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-service-flusher", daemon=True
        )
        self._thread.start()

    # -- submitter side ------------------------------------------------------
    def submit(
        self,
        problem: str,
        records: Sequence[Mapping[str, Any]],
        timeout: float = 60.0,
    ) -> Tuple[List[str], str]:
        """Queue records for one shard; block until their batch commits.

        Returns ``(written_rids, etag_after_flush)``.  Raises ``ValueError``
        on malformed records (checked here, so one bad request can never
        fail its batch-mates), :class:`BackpressureError` when the queue is
        full, and whatever the flush raised when the commit itself failed.
        """
        rows = self.store.prepare(records)  # validates + assigns rids
        if not rows:
            return [], self.store.etag(problem)
        entry = _Entry(rows)
        nbytes = sum(len(str(r)) for r in rows)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if self._pending + len(rows) > self.max_pending:
                raise BackpressureError(
                    f"write queue full ({self._pending} record(s) pending)",
                    retry_after=self.retry_after,
                )
            q = self._queues.setdefault(problem, _ShardQueue())
            q.entries.append(entry)
            q.n_records += len(rows)
            self._bytes[problem] = self._bytes.get(problem, 0) + nbytes
            if q.first_at is None:
                q.first_at = time.monotonic()
            self._pending += len(rows)
            self._gauge()
            self._cond.notify_all()
        if not entry.done.wait(timeout):
            raise TimeoutError(f"batched append to {problem!r} timed out")
        if entry.error is not None:
            raise entry.error
        return entry.rids, entry.etag or "empty"

    def depth(self) -> int:
        """Queued-but-unflushed records across all shards."""
        with self._cond:
            return self._pending

    # -- coordination with optimistic writers --------------------------------
    @contextmanager
    def exclusive(self, problem: str):
        """Drain one shard's queue, then hold its flush mutex.

        While the context is held the flusher cannot commit to this shard,
        so an etag check followed by a direct ``store.append`` is atomic
        with respect to every batched writer in this process.
        """
        self.flush(problem)
        q = self._shard_queue(problem)
        with q.flush_mutex:
            yield

    def flush(self, problem: Optional[str] = None) -> None:
        """Synchronously flush one shard's (or every shard's) pending entries."""
        with self._cond:
            batches = self._take(only=problem, force=True)
        self._flush_batches(batches)

    def close(self) -> None:
        """Flush everything pending and stop the flusher thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=30)
        self.flush()

    # -- flusher side --------------------------------------------------------
    def _shard_queue(self, problem: str) -> _ShardQueue:
        with self._cond:
            return self._queues.setdefault(problem, _ShardQueue())

    def _due(self, problem: str, now: float) -> bool:
        q = self._queues[problem]
        if not q.entries:
            return False
        if self._bytes.get(problem, 0) >= self.flush_bytes:
            return True
        return q.first_at is not None and now - q.first_at >= self.flush_interval

    def _take(self, only: Optional[str] = None, force: bool = False):
        """Detach due (or all, with ``force``) entries; caller holds the lock."""
        now = time.monotonic()
        batches = []
        names = [only] if only is not None else list(self._queues)
        for name in names:
            q = self._queues.get(name)
            if q is None or not q.entries:
                continue
            if not force and not self._due(name, now):
                continue
            batches.append((name, q.entries))
            self._pending -= q.n_records
            q.entries, q.n_records, q.first_at = [], 0, None
            self._bytes[name] = 0
        if batches:
            self._gauge()
        return batches

    def _next_deadline(self) -> Optional[float]:
        firsts = [q.first_at for q in self._queues.values() if q.first_at is not None]
        if not firsts:
            return None
        return min(firsts) + self.flush_interval

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed:
                    deadline = self._next_deadline()
                    now = time.monotonic()
                    if deadline is not None and (
                        deadline <= now
                        or any(self._due(n, now) for n in self._queues)
                    ):
                        break
                    self._cond.wait(
                        timeout=None if deadline is None else max(deadline - now, 0.0)
                    )
                if self._closed:
                    batches = self._take(force=True)
                else:
                    batches = self._take()
                stop = self._closed
            self._flush_batches(batches)
            if stop:
                return

    def _flush_batches(self, batches: List[Tuple[str, List[_Entry]]]) -> None:
        """Commit due batches, overlapping fsyncs of *different* shards.

        Distinct shards hold distinct locks and files, so their commits are
        independent; flushing them serially would put every shard's fsync
        behind every other's and cap throughput at one shard's worth.
        """
        if len(batches) <= 1:
            for name, entries in batches:
                self._flush(name, entries)
            return
        helpers = [
            threading.Thread(
                target=self._flush, args=(name, entries),
                name="repro-service-flush", daemon=True,
            )
            for name, entries in batches[1:]
        ]
        for t in helpers:
            t.start()
        self._flush(*batches[0])
        for t in helpers:
            t.join()

    def _flush(self, problem: str, entries: List[_Entry]) -> None:
        """Commit one batch: one lock round-trip, one write, one fsync."""
        if not entries:
            return
        rows = [row for e in entries for row in e.rows]
        q = self._shard_queue(problem)
        t0 = time.perf_counter()
        with q.flush_mutex:
            try:
                written = set(self.store.append(problem, rows))
                etag = self.store.etag(problem)
            except BaseException as err:  # propagate to every waiter
                for e in entries:
                    e.finish([], None, err)
                return
        elapsed = time.perf_counter() - t0
        if self.metrics is not None:
            self.metrics.inc("repro_service_commits_total")
            self.metrics.inc("repro_service_committed_records_total", float(len(rows)))
            self.metrics.observe(
                "repro_service_batch_records", float(len(rows)), buckets=BATCH_SIZE_BUCKETS
            )
            self.metrics.observe("repro_service_flush_seconds", elapsed)
        for e in entries:
            # a rid can be claimed by at most one batch-mate; first wins
            e.finish([r["rid"] for r in e.rows if r["rid"] in written], etag, None)
            written -= {r["rid"] for r in e.rows}

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("repro_service_write_queue_depth", float(self._pending))
