"""Consistent-hash routing: many server processes behind one archive.

One :class:`~repro.service.server.TuningHistoryServer` is a single Python
process — one GIL parsing every request body, one flusher thread fsyncing
every batch.  Past a few thousand requests per second it is the wall.  The
scale-out unit here is the **problem**: shards are per-problem files and
requests name their problem, so a stateless hash of the problem id decides
which backend owns it and backends share nothing.

Three pieces:

* :class:`HashRing` — classic consistent hashing (SHA-1 points, virtual
  replicas) over **stable shard ids** (``"shard-00"``, ...).  Ids, not
  URLs, are on the ring: a backend that dies and is restarted on a new
  ephemeral port keeps its id, so nothing remaps.  Growing N→N+1 moves
  only ~1/(N+1) of the problems.
* :class:`ShardSupervisor` — spawns one server process per shard id over
  ``<root>/<shard-id>/``, publishes the id→URL topology (as a dict and,
  optionally, over HTTP at ``GET /v1/topology``), restarts dead backends
  (same id, same store directory, new port, bumped topology generation),
  and kills/respawns on demand for fault drills.
* :class:`RouterClient` — the client side of the ring.  Per-problem calls
  go straight to the owner backend; ``problems()``/``stats()`` fan out and
  merge.  Appends get **client-side rids** before the first send, so a
  retry after a connection error or backend restart is exactly-once (the
  store deduplicates by rid).  On a connection error the client re-fetches
  the topology — rebalance-on-topology-change — and retries against the
  (possibly moved) owner with deterministic backoff.

:func:`rebalance_stores` migrates data when the topology itself changes
shape (N→M shard ids): every problem whose ring owner moved is appended —
idempotently, rids and all — to its new owner's store and dropped from the
old one.  Problems whose owner is unchanged are not rewritten.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import multiprocessing
import os
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runtime.resilience import RetryPolicy
from .client import ServiceClient, ServiceError
from .store import ShardedStore

__all__ = ["HashRing", "ShardSupervisor", "RouterClient", "rebalance_stores", "shard_id"]


def shard_id(index: int) -> str:
    """Canonical stable id of the ``index``-th shard (``"shard-00"``...)."""
    return f"shard-{int(index):02d}"


class HashRing:
    """Consistent-hash ring mapping keys onto a set of nodes.

    Parameters
    ----------
    nodes:
        Node identifiers (stable shard ids).  Order does not matter — the
        ring is a pure function of the *set*, so every process that knows
        the ids routes identically.
    replicas:
        Virtual points per node; more replicas = smoother balance at the
        cost of a larger (still tiny) sorted array.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64):
        if not nodes:
            raise ValueError("ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._nodes = sorted(set(str(n) for n in nodes))
        points: List[Tuple[int, str]] = []
        for node in self._nodes:
            for r in range(self.replicas):
                points.append((self._hash(f"{node}#{r}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")

    @property
    def nodes(self) -> List[str]:
        """The ring's node ids, sorted."""
        return list(self._nodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        h = self._hash(str(key))
        i = bisect.bisect_right(self._points, h)
        if i == len(self._points):
            i = 0  # wrap around the ring
        return self._owners[i]

    def assignment(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning node (nodes without keys included)."""
        out: Dict[str, List[str]] = {n: [] for n in self._nodes}
        for key in keys:
            out[self.node_for(key)].append(str(key))
        return out


# -- backend processes -------------------------------------------------------

def _run_shard_server(root: str, host: str, conn, server_kwargs: Dict[str, Any]) -> None:
    """Child-process entry: serve one shard store forever (port sent back)."""
    from .server import make_server  # re-import under spawn start methods

    server = make_server(root, host=host, port=0, **server_kwargs)
    conn.send(server.server_address[1])
    conn.close()
    server.serve_forever()


class _ShardProc:
    """One backend server process plus its published URL."""

    __slots__ = ("sid", "root", "proc", "url")

    def __init__(self, sid: str, root: str, proc, url: str):
        self.sid, self.root, self.proc, self.url = sid, root, proc, url


class ShardSupervisor:
    """Run and watch N shard server processes over one root directory.

    Parameters
    ----------
    root:
        Parent directory; shard ``i`` stores under ``<root>/shard-<i>/``.
    n_shards:
        Number of backend processes (= ring nodes).
    host:
        Bind address for every backend (ports are ephemeral and published
        in the topology).
    server_kwargs:
        Extra keyword arguments for :func:`~repro.service.server.make_server`
        in each backend (batching/backpressure/cache knobs).
    restart:
        When ``True``, :meth:`poll` (and the :meth:`watch` thread) respawns
        any backend that died — same shard id and store directory, fresh
        port — and bumps the topology generation so routing clients refresh.
    """

    def __init__(
        self,
        root: str,
        n_shards: int,
        host: str = "127.0.0.1",
        server_kwargs: Optional[Dict[str, Any]] = None,
        restart: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.root = str(root)
        self.host = host
        self.restart = bool(restart)
        self.server_kwargs = dict(server_kwargs or {})
        self.generation = 0
        self._lock = threading.Lock()
        self._procs: Dict[str, _ShardProc] = {}
        self._watcher: Optional[threading.Thread] = None
        self._closing = False
        os.makedirs(self.root, exist_ok=True)
        for i in range(int(n_shards)):
            self._spawn(shard_id(i))

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self, sid: str) -> None:
        shard_root = os.path.join(self.root, sid)
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_run_shard_server,
            args=(shard_root, self.host, child_conn, self.server_kwargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(30):
            proc.terminate()
            raise RuntimeError(f"shard backend {sid} did not report its port")
        port = parent_conn.recv()
        parent_conn.close()
        with self._lock:
            self._procs[sid] = _ShardProc(
                sid, shard_root, proc, f"http://{self.host}:{port}"
            )
            self.generation += 1

    def kill(self, sid: str) -> int:
        """SIGKILL one backend (fault drill); returns the dead pid."""
        proc = self._procs[sid].proc
        pid = proc.pid
        proc.kill()
        proc.join(timeout=10)
        return pid

    def poll(self) -> List[str]:
        """Respawn dead backends; returns the shard ids restarted."""
        if not self.restart or self._closing:
            return []
        dead = [sp.sid for sp in list(self._procs.values()) if not sp.proc.is_alive()]
        for sid in dead:
            if self._closing:  # pragma: no cover - close() racing the watcher
                break
            self._spawn(sid)
        return dead

    def watch(self, interval: float = 0.1) -> threading.Thread:
        """Start (once) a daemon thread restarting dead backends."""
        if self._watcher is None:
            def _loop() -> None:
                while not self._closing:
                    try:
                        self.poll()
                    except Exception:  # pragma: no cover - keep watching
                        pass
                    time.sleep(interval)

            self._watcher = threading.Thread(
                target=_loop, name="repro-shard-watcher", daemon=True
            )
            self._watcher.start()
        return self._watcher

    def close(self) -> None:
        """Stop the watcher and terminate every backend."""
        self._closing = True
        if self._watcher is not None:
            self._watcher.join(timeout=5)
        for sp in self._procs.values():
            if sp.proc.is_alive():
                sp.proc.terminate()
        for sp in self._procs.values():
            sp.proc.join(timeout=10)

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- topology ------------------------------------------------------------
    def topology(self) -> Dict[str, Any]:
        """The current id→URL map plus its generation counter."""
        with self._lock:
            return {
                "generation": self.generation,
                "shards": {sid: sp.url for sid, sp in sorted(self._procs.items())},
            }

    def urls(self) -> List[str]:
        """Backend base URLs, ordered by shard id."""
        return [url for _, url in sorted(self.topology()["shards"].items())]

    def serve_topology(self, port: int = 0, host: Optional[str] = None) -> str:
        """Expose ``GET /v1/topology`` on a tiny HTTP endpoint; returns its URL.

        Routing clients bootstrap (and refresh after backend restarts) from
        this one well-known address instead of tracking ephemeral ports.
        """
        supervisor = self

        class _TopologyHandler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # pragma: no cover - quiet
                pass

            def do_GET(self) -> None:  # noqa: N802 - http.server naming
                if self.path.rstrip("/") != "/v1/topology":
                    body = json.dumps({"error": "unknown endpoint"}).encode()
                    self.send_response(404)
                else:
                    body = json.dumps(supervisor.topology()).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        server = ThreadingHTTPServer((host or self.host, port), _TopologyHandler)
        server.daemon_threads = True
        thread = threading.Thread(
            target=server.serve_forever, name="repro-topology", daemon=True
        )
        thread.start()
        self._topology_server = server  # keep a handle for close via GC/tests
        bound = server.server_address
        return f"http://{bound[0]}:{bound[1]}"


# -- routing client ----------------------------------------------------------

class RouterClient:
    """Archive client that routes per-problem calls across shard backends.

    Duck-types the same archive interface as :class:`ServiceClient`
    (``records``/``append``/``count``/``problems``/``query``/``etag``/
    ``compact``/``stats``), so campaigns crowd-tune against an N-process
    topology unchanged.

    Parameters
    ----------
    topology:
        Either a topology dict (``{"shards": {id: url, ...}, ...}`` — e.g.
        :meth:`ShardSupervisor.topology`), a plain ``{id: url}`` mapping,
        or the URL of a ``GET /v1/topology`` endpoint to bootstrap (and
        later refresh) from.
    timeout, replicas:
        Socket timeout per request; virtual points per ring node.
    retry:
        :class:`RetryPolicy` for re-routing after connection errors /
        backend restarts (appends carry client-side rids, so these retries
        are exactly-once).
    pool_size:
        Keep-alive connections retained per backend; size it to the number
        of threads sharing this client or bursts pay reconnect latency.
    """

    def __init__(
        self,
        topology,
        timeout: float = 30.0,
        replicas: int = 64,
        retry: Optional[RetryPolicy] = None,
        pool_size: int = 8,
    ):
        self.timeout = float(timeout)
        self.replicas = int(replicas)
        self.pool_size = int(pool_size)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=6, backoff=0.05, backoff_factor=2.0, seed=0
        )
        self._topology_url: Optional[str] = None
        self._lock = threading.Lock()
        self._clients: Dict[str, ServiceClient] = {}
        self.generation: Any = None
        if isinstance(topology, str):
            self._topology_url = topology.rstrip("/")
            self._apply(self._fetch_topology())
        else:
            self._apply(topology)

    # -- topology handling ---------------------------------------------------
    def _fetch_topology(self) -> Dict[str, Any]:
        with urllib.request.urlopen(
            self._topology_url + "/v1/topology", timeout=self.timeout
        ) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def _apply(self, topology: Mapping[str, Any]) -> None:
        shards = topology.get("shards", topology)
        if not isinstance(shards, Mapping) or not shards:
            raise ValueError(f"topology has no shards: {topology!r}")
        with self._lock:
            self.generation = topology.get("generation") if "generation" in topology else None
            old = self._clients
            fresh: Dict[str, ServiceClient] = {}
            for sid, url in shards.items():
                sid, url = str(sid), str(url).rstrip("/")
                prev = old.get(sid)
                if prev is not None and prev.base_url == url:
                    fresh[sid] = prev  # keep its warm connection pool
                else:
                    fresh[sid] = ServiceClient(
                        url, timeout=self.timeout, pool_size=self.pool_size
                    )
            self._clients = fresh
            self._ring = HashRing(list(self._clients), replicas=self.replicas)
            for sid, client in old.items():
                if self._clients.get(sid) is not client:
                    client.close()

    def refresh(self) -> None:
        """Re-fetch the topology (no-op without a topology URL)."""
        if self._topology_url is not None:
            self._apply(self._fetch_topology())

    def close(self) -> None:
        """Close every backend client's pooled connections."""
        with self._lock:
            for client in self._clients.values():
                client.close()

    @property
    def ring(self) -> HashRing:
        """The current hash ring (rebuilt on every topology change)."""
        with self._lock:
            return self._ring

    def shard_for(self, problem: str) -> str:
        """The shard id owning one problem."""
        return self.ring.node_for(problem)

    def _client_for(self, problem: str) -> ServiceClient:
        with self._lock:
            return self._clients[self._ring.node_for(problem)]

    def _routed(self, problem: str, call: Callable[[ServiceClient], Any]) -> Any:
        """Run one per-problem call, re-routing on connection errors.

        A dead backend (being restarted by the supervisor) surfaces as an
        ``OSError``/``HTTPException`` or as a 503; the topology is then
        refreshed — the owner may have come back on a new port — and the
        call retried with deterministic backoff.  Callers make appends
        idempotent (client-side rids) before entering.
        """
        last: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return call(self._client_for(problem))
            except ServiceError as e:
                if e.status != 429:
                    raise  # real application error — do not mask it
                last = e
                delay = max(e.retry_after, self.retry.delay(attempt))
            except (OSError, http.client.HTTPException) as e:
                last = e
                delay = self.retry.delay(attempt)
            if attempt >= self.retry.max_attempts:
                break
            time.sleep(delay)
            try:
                self.refresh()
            except OSError:  # pragma: no cover - topology endpoint down too
                pass
        raise last  # type: ignore[misc]

    # -- archive interface ---------------------------------------------------
    def append(
        self,
        problem: str,
        records: Sequence[Mapping[str, Any]],
        if_match: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Route an append to the owner shard (retried exactly-once).

        Records without rids get one *here*, client-side, before the first
        send: if the owner dies after committing but before answering, the
        retry re-sends the same rids and the store deduplicates — zero
        lost, zero duplicated.
        """
        import uuid

        rows = [dict(r) for r in records]
        for row in rows:
            if not row.get("rid"):
                row["rid"] = uuid.uuid4().hex
        return self._routed(problem, lambda c: c.append(problem, rows, if_match=if_match))

    def records(self, problem: str, etag: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records of one problem, from its owner shard."""
        return self._routed(problem, lambda c: c.records(problem, etag=etag))

    def count(self, problem: str) -> int:
        """Number of archived records for one problem."""
        return self._routed(problem, lambda c: c.count(problem))

    def etag(self, problem: str) -> str:
        """Current shard version token for one problem."""
        return self._routed(problem, lambda c: c.etag(problem))

    def query(self, problem: str, task: Mapping[str, Any], k: Optional[int] = None) -> List[Dict[str, Any]]:
        """Nearest archived tasks, answered by the owner shard."""
        return self._routed(problem, lambda c: c.query(problem, task, k=k))

    def compact(self, problem: str) -> Dict[str, int]:
        """Compact one problem's shard on its owner backend."""
        return self._routed(problem, lambda c: c.compact(problem))

    # -- fan-out calls -------------------------------------------------------
    def problems(self) -> List[str]:
        """Union of every backend's archived problems, sorted."""
        out: set = set()
        with self._lock:
            clients = list(self._clients.values())
        for client in clients:
            out.update(client.problems())
        return sorted(out)

    def stats(self) -> Dict[str, Any]:
        """Aggregate store stats across backends (per-problem map merged)."""
        merged: Dict[str, Any] = {"n_records": 0, "problems": {}, "shards": {}}
        with self._lock:
            items = sorted(self._clients.items())
        for sid, client in items:
            s = client.stats()
            merged["n_records"] += int(s.get("n_records", 0))
            merged["problems"].update(s.get("problems", {}))
            merged["shards"][sid] = {
                "url": client.base_url,
                "n_records": int(s.get("n_records", 0)),
            }
        return merged


# -- topology-change migration -----------------------------------------------

def rebalance_stores(
    root: str,
    old_ids: Sequence[str],
    new_ids: Sequence[str],
    replicas: int = 64,
    on_event: Optional[Callable[[str, str], Any]] = None,
) -> Dict[str, Any]:
    """Migrate shard directories under ``root`` from one ring to another.

    For every problem archived under an old shard id whose owner on the
    **new** ring differs, its records are appended — with rids, so the
    operation is idempotent and restartable after a crash — to the new
    owner's store, then dropped from the old location.  Problems whose
    owner did not move are untouched (consistent hashing keeps them the
    vast majority).  Run this offline (backends stopped) when changing the
    shard count; returns ``{"moved": [(problem, from, to), ...], "kept": n}``.
    """
    new_ring = HashRing(new_ids, replicas=replicas)
    moved: List[Tuple[str, str, str]] = []
    kept = 0
    for sid in sorted(set(str(s) for s in old_ids)):
        src_root = os.path.join(root, sid)
        if not os.path.isdir(src_root):
            continue
        src = ShardedStore(src_root, on_event=on_event)
        for problem in src.problems():
            owner = new_ring.node_for(problem)
            if owner == sid:
                kept += 1
                continue
            dst = ShardedStore(os.path.join(root, owner), on_event=on_event)
            dst.append(problem, src.records(problem, with_rid=True))
            src.clear(problem)
            moved.append((problem, sid, owner))
            if on_event is not None:
                on_event("service-rebalance", f"{problem}: {sid} -> {owner}")
    return {"moved": moved, "kept": kept}
