"""Single-task Gaussian-process regression.

This is the ``δ = 1`` surrogate used by GPTune's single-task mode (the
baseline the paper compares MLA against in Sec. 6.5) and a building block the
LCM generalizes.  A zero-mean GP with ARD squared-exponential kernel,

.. math::  f(x) \\sim GP(0, \\sigma_f^2 k(x, x') + \\sigma_n^2 \\delta_{x,x'}),

is fitted by maximizing the log marginal likelihood over
``(log σ_f, log l_1..l_β, log σ_n)`` with multi-start L-BFGS-B and analytic
gradients (Sec. 3.1, modeling phase).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import linalg as sla
from scipy import optimize

from .kernels import gaussian_kernel, gaussian_kernel_with_grad, pairwise_sq_diffs

__all__ = ["GaussianProcess"]


def _chol_with_jitter(A: np.ndarray, jitter: float) -> Tuple[np.ndarray, float]:
    """Cholesky factor of ``A + jitter*I``, escalating jitter on failure."""
    n = A.shape[0]
    j = jitter
    for _ in range(8):
        try:
            return sla.cholesky(A + j * np.eye(n), lower=True), j
        except sla.LinAlgError:
            j = max(j, 1e-12) * 10.0
    raise sla.LinAlgError("covariance not positive definite even with jitter")


class GaussianProcess:
    """Exact GP regression with MLE hyperparameters.

    Parameters
    ----------
    jitter:
        Base diagonal regularization.
    n_start:
        Random restarts of the likelihood optimization.
    maxiter:
        L-BFGS-B iteration cap per restart.
    seed:
        Seed for the restart initializations.
    """

    def __init__(
        self,
        jitter: float = 1e-8,
        n_start: int = 3,
        maxiter: int = 200,
        seed: Optional[int] = None,
    ):
        self.jitter = float(jitter)
        self.n_start = int(n_start)
        self.maxiter = int(maxiter)
        self.rng = np.random.default_rng(seed)
        # fitted state
        self.X: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self.theta: Optional[np.ndarray] = None  # log [σ_f², l_1..l_β, σ_n²]
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self.log_likelihood_: float = -np.inf

    # -- likelihood ------------------------------------------------------
    def _nll_and_grad(
        self, theta: np.ndarray, sqd: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Negative log marginal likelihood and gradient in log-parameters."""
        n = y.shape[0]
        sf2 = np.exp(theta[0])
        ls = np.exp(theta[1:-1])
        sn2 = np.exp(theta[-1])
        K, dK_dlogl = gaussian_kernel_with_grad(sqd, ls, variance=1.0)
        Ky = sf2 * K + (sn2 + self.jitter) * np.eye(n)
        try:
            L = sla.cholesky(Ky, lower=True)
        except sla.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), y)
        nll = 0.5 * float(y @ alpha) + float(np.log(np.diag(L)).sum()) + 0.5 * n * np.log(2 * np.pi)
        # M = αα^T - K^{-1};  dNLL/dθ = -0.5 tr(M dK/dθ)
        Kinv = sla.cho_solve((L, True), np.eye(n))
        M = np.outer(alpha, alpha) - Kinv
        grad = np.empty_like(theta)
        grad[0] = -0.5 * float(np.sum(M * (sf2 * K)))  # ∂K/∂log σ_f² = σ_f² K
        for j in range(ls.shape[0]):
            grad[1 + j] = -0.5 * float(np.sum(M * (sf2 * dK_dlogl[j])))
        grad[-1] = -0.5 * sn2 * float(np.trace(M))
        return nll, grad

    # -- fitting -----------------------------------------------------------
    def fit(
        self, X: np.ndarray, y: np.ndarray, theta0: Optional[np.ndarray] = None
    ) -> "GaussianProcess":
        """Fit hyperparameters to ``(X, y)`` (X normalized, y centered or raw).

        ``theta0`` optionally warm-starts the first restart from a known-good
        hyperparameter vector (e.g. the previous MLA iteration's fit for the
        same task), mirroring :meth:`repro.core.lcm.LCM.fit`; with
        ``n_start=1`` the multi-start search reduces to one L-BFGS run.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        if X.shape[0] < 1:
            raise ValueError("need at least one observation")
        beta = X.shape[1]
        sqd = pairwise_sq_diffs(X)
        yvar = max(float(np.var(y)), 1e-12)
        if theta0 is not None:
            theta0 = np.asarray(theta0, dtype=float).ravel()
            if theta0.shape != (beta + 2,):
                raise ValueError(
                    f"theta0 has {theta0.shape[0]} entries, expected {beta + 2}"
                )
        warm = theta0

        best_nll, best_theta = np.inf, None
        for s in range(self.n_start):
            if s == 0 and warm is not None:
                theta0 = warm
            elif s == 0:
                theta0 = np.concatenate(
                    [[np.log(yvar)], np.log(np.full(beta, 0.3)), [np.log(yvar * 1e-4 + 1e-10)]]
                )
            else:
                theta0 = np.concatenate(
                    [
                        [np.log(yvar) + self.rng.normal(0, 1)],
                        self.rng.normal(np.log(0.3), 0.7, beta),
                        [np.log(yvar * 1e-4 + 1e-10) + self.rng.normal(0, 1)],
                    ]
                )
            res = optimize.minimize(
                self._nll_and_grad,
                theta0,
                args=(sqd, y),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.maxiter},
                bounds=[(-20.0, 20.0)] * (beta + 2),
            )
            if res.fun < best_nll:
                best_nll, best_theta = float(res.fun), np.asarray(res.x)

        assert best_theta is not None
        self.X, self.y, self.theta = X, y, best_theta
        self.log_likelihood_ = -best_nll
        sf2 = np.exp(best_theta[0])
        ls = np.exp(best_theta[1:-1])
        sn2 = np.exp(best_theta[-1])
        Ky = sf2 * gaussian_kernel(sqd, ls) + (sn2 + self.jitter) * np.eye(X.shape[0])
        self._L, _ = _chol_with_jitter(Ky, 0.0)
        self._alpha = sla.cho_solve((self._L, True), y)
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (Eqs. 5–6 with δ = 1).

        Returns ``(mu, var)`` each of shape ``(N*,)``; variances are clipped
        at zero.
        """
        if self.theta is None or self.X is None:
            raise RuntimeError("predict() before fit()")
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        sf2 = np.exp(self.theta[0])
        ls = np.exp(self.theta[1:-1])
        Ks = sf2 * gaussian_kernel(pairwise_sq_diffs(Xstar, self.X), ls)
        mu = Ks @ self._alpha
        v = sla.solve_triangular(self._L, Ks.T, lower=True)
        var = sf2 - np.einsum("ij,ij->j", v, v)
        return mu, np.maximum(var, 0.0)

    @property
    def lengthscales(self) -> np.ndarray:
        """Fitted ARD lengthscales."""
        if self.theta is None:
            raise RuntimeError("not fitted")
        return np.exp(self.theta[1:-1])
