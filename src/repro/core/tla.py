"""Transfer Learning Autotuning (TLA).

GPTune's history goals (Sec. 1, goal 3) extend beyond rerunning the same
tasks: the open-source GPTune system ships *transfer learning autotuning*,
which reuses completed MLA data to tune a **new, unseen task**.  This module
implements the two standard variants on top of this package's MLA core:

* **TLA-0** (:meth:`TransferLearner.predict_config`) — zero new evaluations.
  The per-task optimal configurations from the source data are interpolated
  over the normalized task space (inverse-distance weighting, which degrades
  gracefully with very few source tasks) and the interpolant is evaluated at
  the new task.  This is GPTune's "TLA1: predict the optimum without any
  objective evaluation".
* **TLA-MLA** (:meth:`TransferLearner.tune`) — few new evaluations.  MLA
  runs over the source tasks ∪ the new task with the source tasks *frozen*
  (their archived samples inform the joint LCM; only the new task spends
  budget).  The LCM's coregionalization then transfers the source
  landscapes to the new task, exactly the mechanism of Sec. 3.1 with the
  budget concentrated on one row.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from .data import TuningData
from .mla import GPTune, TuneResult
from .options import Options
from .problem import TuningProblem

__all__ = ["TransferLearner"]


class TransferLearner:
    """Reuse completed tuning data to tune new tasks.

    Parameters
    ----------
    problem:
        The tuning problem (spaces must match the source data).
    source:
        Completed :class:`~repro.core.data.TuningData` — e.g.
        ``TuneResult.data`` from an earlier MLA run, or a fresh
        ``TuningData`` populated via ``load_records`` from a
        :class:`~repro.core.history.HistoryDB`.
    """

    def __init__(self, problem: TuningProblem, source: TuningData):
        if source.n_tasks < 1 or source.n_samples() == 0:
            raise ValueError("source data is empty")
        if source.tuning_space.names != problem.tuning_space.names:
            raise ValueError("source tuning space does not match the problem")
        self.problem = problem
        self.source = source

    @classmethod
    def from_archive(
        cls,
        problem: TuningProblem,
        archive: Any,
        new_task: Optional[Mapping[str, Any]] = None,
        max_source_tasks: Optional[int] = None,
    ) -> "TransferLearner":
        """Build a transfer learner straight from a tuning archive.

        This is the cross-campaign reuse path: campaign A archives its MLA
        evaluations (via a :class:`~repro.core.history.HistoryDB`, a
        :class:`~repro.service.store.ShardedStore`, or the crowd-tuning
        service), and campaign B — a different process, machine, or user —
        transfers them to an unseen task without ever seeing A's
        :class:`~repro.core.mla.TuneResult`.

        Parameters
        ----------
        problem:
            The tuning problem; its name selects the archive shard.
        archive:
            Anything with ``records(problem_name)`` — ``HistoryDB``,
            ``ShardedStore``, or ``ServiceClient``.
        new_task:
            With ``max_source_tasks``, pre-prunes the archive to the source
            tasks nearest to this one (normalized task space) via
            :func:`repro.service.query.nearest_tasks`.
        max_source_tasks:
            Source-task cap applied at archive load (``None`` = keep all;
            :meth:`tune` can prune further per call).
        """
        from ..service.query import archive_source

        source = archive_source(
            problem, archive, new_task=new_task, max_tasks=max_source_tasks
        )
        return cls(problem, source)

    # -- TLA-0: no new evaluations ------------------------------------------
    def predict_config(
        self, new_task: Mapping[str, Any], power: float = 2.0, objective: int = 0
    ) -> Dict[str, Any]:
        """Predict a good configuration for ``new_task`` without running it.

        Inverse-distance-weighted interpolation of the source tasks' best
        configurations in normalized task space; integer/categorical
        dimensions snap via the space's denormalization.

        Parameters
        ----------
        new_task:
            The unseen task.
        power:
            IDW exponent (larger = more nearest-neighbour-like).
        objective:
            Which objective's optimum to transfer (for γ > 1 sources).
        """
        t_new = self.problem.task_space.normalize(new_task)
        T = self.source.normalized_tasks()
        best_units = np.vstack(
            [
                self.source.tuning_space.normalize(self.source.best(i, objective)[0])
                for i in range(self.source.n_tasks)
            ]
        )
        d = np.linalg.norm(T - t_new[None, :], axis=1)
        if np.any(d < 1e-12):  # exact task match: return its optimum directly
            i = int(np.argmin(d))
            return dict(self.source.best(i, objective)[0])
        w = 1.0 / d**power
        w = w / w.sum()
        blended = np.clip(w @ best_units, 0.0, 1.0)
        cfg = self.problem.tuning_space.denormalize(blended)
        if self.problem.is_feasible(new_task, cfg):
            return cfg
        # fall back to the nearest source task's (feasible-for-it) optimum
        return dict(self.source.best(int(np.argmin(d)), objective)[0])

    # -- TLA-MLA: few new evaluations ---------------------------------------
    def tune(
        self,
        new_task: Mapping[str, Any],
        n_samples: int,
        options: Optional[Options] = None,
        max_source_tasks: Optional[int] = None,
        seed_with_tla0: bool = True,
    ) -> TuneResult:
        """Tune ``new_task`` with MLA warm-started from the frozen sources.

        Parameters
        ----------
        new_task:
            The unseen task; receives all ``n_samples`` evaluations.
        n_samples:
            ε_tot for the new task.
        options:
            Tuner options.
        max_source_tasks:
            Keep only the closest source tasks (in normalized task space) —
            the LCM covariance is cubic in total samples, so pruning far
            sources keeps transfer cheap.
        seed_with_tla0:
            Spend the first evaluation of the budget on the TLA-0 predicted
            configuration (default True).  With tiny budgets this anchors
            the new task's row of the LCM at the most promising point
            instead of a purely space-filling one.

        Returns
        -------
        :class:`~repro.core.mla.TuneResult` whose **last** task is the new
        one (``result.best(result.data.n_tasks - 1)``).
        """
        t_new = self.problem.task_space.normalize(new_task)
        T = self.source.normalized_tasks()
        order = np.argsort(np.linalg.norm(T - t_new[None, :], axis=1))
        keep = list(order[: max_source_tasks] if max_source_tasks else order)

        new_task_dict = self.problem.task_space.to_dict(new_task)
        # a source task identical to the new task cannot be a *frozen* row
        # (duplicate task keys would swallow its records) — its archived
        # evaluations preload the new task's own row instead, which is the
        # stronger reuse anyway
        new_key = _record_key(self.problem, new_task_dict)
        exact = [i for i in keep if _record_key(self.problem, self.source.tasks[i]) == new_key]
        keep = [i for i in keep if i not in exact]
        tasks: List[Mapping[str, Any]] = [self.source.tasks[i] for i in keep]
        tasks.append(new_task_dict)
        records = [
            rec
            for i in keep + exact
            for rec in _task_records(self.source, i)
        ]
        if seed_with_tla0:
            cfg0 = self.problem.tuning_space.round_trip(self.predict_config(new_task))
            y0 = self.problem.evaluate(new_task_dict, cfg0)
            records.append(
                {"task": new_task_dict, "x": cfg0, "y": [float(v) for v in y0]}
            )
        tuner = GPTune(self.problem, options)
        return tuner.tune(
            tasks,
            n_samples,
            preload=records,
            frozen=list(range(len(keep))),
        )


def _record_key(problem: TuningProblem, task: Mapping[str, Any]) -> tuple:
    return tuple(repr(task[n]) for n in problem.task_space.names)


def _task_records(data: TuningData, task: int) -> List[Dict[str, Any]]:
    """Records of one task only (helper for selective preloading)."""
    return [
        {"task": dict(data.tasks[task]), "x": dict(x), "y": [float(v) for v in y]}
        for x, y in zip(data.X[task], data.Y[task])
    ]
