"""Sobol sensitivity analysis on the fitted surrogate.

The open-source GPTune system offers parameter sensitivity analysis so users
learn *which* tuning parameters matter for a task.  This module implements
variance-based (Sobol) first-order and total-order indices with Saltelli's
estimator, evaluated on the cheap posterior mean of a fitted surrogate —
thousands of model evaluations cost what one application run would.

Given a model ``f`` on the unit hypercube and sample matrices ``A, B`` with
hybrid matrices ``AB_i`` (``A`` with column ``i`` from ``B``):

* first order:  ``S_i  = Var_i / Var(f)`` with
  ``Var_i = mean(f(B) · (f(AB_i) − f(A)))``  (Saltelli 2010),
* total order:  ``ST_i = mean((f(A) − f(AB_i))²) / (2 Var(f))`` (Jansen).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .data import TuningData
from .lcm import LCM

__all__ = ["sobol_indices", "surrogate_sensitivity"]


def sobol_indices(
    f: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n_base: int = 512,
    seed: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Saltelli-estimated Sobol indices of ``f`` on ``[0, 1]^dim``.

    Parameters
    ----------
    f:
        Vectorized function ``(n, dim) -> (n,)``.
    dim:
        Input dimensionality.
    n_base:
        Base sample count N; total model evaluations are ``N (dim + 2)``.
    seed:
        RNG seed.

    Returns
    -------
    dict with ``"S1"`` (first-order) and ``"ST"`` (total-order) arrays of
    length ``dim``.  Estimates are clipped to ``[0, 1]`` — with finite
    samples the raw estimators can stray slightly outside.
    """
    if dim < 1 or n_base < 8:
        raise ValueError("need dim >= 1 and n_base >= 8")
    rng = np.random.default_rng(seed)
    A = rng.random((n_base, dim))
    B = rng.random((n_base, dim))
    fA = np.asarray(f(A), dtype=float).ravel()
    fB = np.asarray(f(B), dtype=float).ravel()
    all_f = np.concatenate([fA, fB])
    var = float(np.var(all_f))
    if var < 1e-300:
        return {"S1": np.zeros(dim), "ST": np.zeros(dim)}

    S1 = np.empty(dim)
    ST = np.empty(dim)
    for i in range(dim):
        ABi = A.copy()
        ABi[:, i] = B[:, i]
        fABi = np.asarray(f(ABi), dtype=float).ravel()
        S1[i] = float(np.mean(fB * (fABi - fA))) / var
        ST[i] = 0.5 * float(np.mean((fA - fABi) ** 2)) / var
    return {"S1": np.clip(S1, 0.0, 1.0), "ST": np.clip(ST, 0.0, 1.0)}


def surrogate_sensitivity(
    lcm: LCM,
    data: TuningData,
    task: int,
    n_base: int = 512,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Sobol indices of a fitted LCM's posterior mean for one task.

    Returns a mapping ``parameter name -> {"S1": ..., "ST": ...}``, sorted
    by descending total-order index — the "which knobs matter" answer.

    Notes
    -----
    Only valid when the LCM was fitted on plain normalized inputs (no
    performance-model feature enrichment), since the unit cube must coincide
    with the tuning space.
    """
    beta = data.tuning_space.dimension
    if lcm.params.beta != beta:
        raise ValueError(
            "LCM input dimension does not match the tuning space "
            "(was it fitted with model-enriched features?)"
        )

    def f(U: np.ndarray) -> np.ndarray:
        mu, _ = lcm.predict(task, U)
        return mu

    idx = sobol_indices(f, beta, n_base=n_base, seed=seed)
    out = {
        name: {"S1": float(idx["S1"][j]), "ST": float(idx["ST"][j])}
        for j, name in enumerate(data.tuning_space.names)
    }
    return dict(sorted(out.items(), key=lambda kv: -kv[1]["ST"]))
