"""The GPTune driver: multitask-learning autotuning (Algorithms 1 and 2).

:class:`GPTune` runs Bayesian optimization with a shared LCM surrogate over
δ tasks:

1. **Sampling phase** — an LHS design of ``ε = ε_tot·initial_fraction``
   feasible configurations per task is evaluated.
2. **Modeling phase** — an LCM is fitted to all data by multi-start L-BFGS
   (optionally through an executor; Sec. 4.3).  When coarse performance
   models are attached, a *model-update phase* first refits their
   hyperparameters, then the kernel inputs are enriched with the model
   outputs (Sec. 3.3).
3. **Search phase** — per task, PSO maximizes Expected Improvement over the
   posterior (γ = 1), or NSGA-II advances the predicted Pareto front and
   ``k = pareto_batch`` candidates are evaluated (γ > 1, Algorithm 2).

Phases 2–3 repeat until the per-task budget ``ε_tot`` is exhausted.  The
returned :class:`TuneResult` carries all data, the best configurations, and
the phase-time breakdown reported in Table 3 of the paper.

The driver is built for flaky production campaigns (see
:mod:`repro.runtime.resilience`): objective calls run under a retry policy,
a resumable checkpoint can be written after every batch
(:meth:`GPTune.resume` continues a killed run with identical decisions), and
a failed LCM fit degrades to independent per-task GPs and then to random
search instead of aborting.  Every resilience action is recorded in a
:class:`~repro.runtime.trace.CampaignLog` exposed as ``TuneResult.events``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..observability import MetricsRegistry, SpanRecorder
from ..observability.spans import install_recorder, maybe_span
from ..runtime.async_engine import AsyncEvalEngine, make_scheduler
from ..runtime.resilience import RetryPolicy, RunCheckpoint
from ..runtime.trace import CampaignLog
from .acquisition import BatchedEIAcquisition, EIAcquisition
from .data import TuningData
from .gp import GaussianProcess
from .history import HistoryDB
from .lcm import LCM
from .model import SparseLCM, get_backend, select_backend
from .options import Options
from .perfmodel import ModelFeaturizer
from .problem import TuningProblem
from .sampling import LHSSampler, sample_feasible
from .search.nsga2 import NSGA2, crowding_distance, fast_non_dominated_sort
from .search.penalty import PenalizedAcquisition, constant_liar, penalize_lcb
from .search.pso import ParticleSwarm
from .search.pso_batched import BatchedParticleSwarm

__all__ = ["GPTune", "IndependentGPs", "TuneResult"]


class TuneResult:
    """Outcome of one MLA run.

    Attributes
    ----------
    data:
        The full :class:`~repro.core.data.TuningData` (T, X, Y).
    stats:
        Phase-time breakdown: ``objective_time`` is the *simulated*
        application time (the sum of runtime objectives, matching the
        "objective" column of Table 3), ``objective_wall_time`` the real
        seconds spent in the objective callable, ``modeling_time`` and
        ``search_time`` real seconds in those phases, ``total_time`` their
        sum with ``objective_time``.
    models:
        The fitted surrogate(s) of the final iteration, one per objective:
        an :class:`~repro.core.lcm.LCM`, an :class:`IndependentGPs` fallback,
        or ``None`` after a full downgrade to random search.
    events:
        The :class:`~repro.runtime.trace.CampaignLog` of resilience events
        (retries, timeouts, model downgrades, checkpoints) from the run.
        With ``Options(telemetry=True)`` it additionally carries timestamped
        ``"span"`` phase/model timings and a final ``"stats"`` event.
    metrics:
        The driver's :class:`~repro.observability.MetricsRegistry` —
        evaluation/retry/failure counters and (with telemetry on) span
        histograms, mergeable into a service-wide registry.
    """

    def __init__(
        self,
        data: TuningData,
        stats: Dict[str, float],
        models: List[LCM],
        events: Optional[CampaignLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.data = data
        self.stats = dict(stats)
        self.models = models
        self.events = events if events is not None else CampaignLog()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def best(self, task: int, objective: int = 0) -> Tuple[Dict[str, Any], float]:
        """Best configuration and value for one task (single objective)."""
        return self.data.best(task, objective)

    def best_values(self, objective: int = 0) -> np.ndarray:
        """Per-task best objective values."""
        return np.array(
            [self.data.best(i, objective)[1] for i in range(self.data.n_tasks)]
        )

    def pareto_front(self, task: int):
        """Non-dominated ``(configs, objectives)`` for one task (γ > 1)."""
        return self.data.pareto_front(task)

    def trajectory(self, task: int, objective: int = 0) -> np.ndarray:
        """Best-so-far curve (anytime performance) for one task."""
        return self.data.best_trajectory(task, objective)


class _BatchEval:
    """Picklable evaluation closure for executor-mapped batch evaluation.

    Returns the full :class:`~repro.runtime.resilience.EvalOutcome` so retry
    and failure events that happened inside a worker process can be replayed
    into the driver's campaign log.
    """

    def __init__(
        self,
        problem: TuningProblem,
        tasks: List[Mapping[str, Any]],
        retry: Optional[RetryPolicy] = None,
    ):
        self.problem = problem
        self.tasks = tasks
        self.retry = retry

    def __call__(self, item):
        idx, cfg = item
        return self.problem.evaluate_outcome(self.tasks[idx], cfg, retry=self.retry)


class _AsyncEval:
    """Picklable evaluation callable for the async engine's schedulers.

    The payload is ``(task_index, config)`` — the engine's submission unit.
    Retries/timeouts run *inside* the scheduler's worker via
    :meth:`~repro.core.problem.TuningProblem.evaluate_outcome`, so the
    resilience ladder composes with the queue unchanged, and the returned
    :class:`~repro.runtime.resilience.EvalOutcome` carries its events back
    for replay into the campaign log.
    """

    def __init__(
        self,
        problem: TuningProblem,
        tasks: List[Mapping[str, Any]],
        retry: Optional[RetryPolicy] = None,
    ):
        self.problem = problem
        self.tasks = tasks
        self.retry = retry

    def __call__(self, payload):
        idx, cfg = payload
        return self.problem.evaluate_outcome(self.tasks[idx], cfg, retry=self.retry)


def _feasibility_or_none(problem: TuningProblem, task: Mapping[str, Any]):
    """Feasibility predicate over normalized points, or ``None`` if trivial.

    An unconstrained tuning space makes every candidate feasible, so the
    search phase skips the per-row constraint predicate entirely instead of
    paying a Python loop per optimizer step.
    """
    if problem.tuning_space.constraints:
        return problem.feasibility_on_unit(task)
    return None


def _mo_lcb(predicts, feasible, Xunit: np.ndarray) -> np.ndarray:
    """Per-objective lower-confidence-bound rows for NSGA-II.

    The LCB scalarization ``mu - sqrt(var)`` per objective lets the NSGA-II
    population span the optimistic Pareto front (the "multi-objective EI"
    search of Algorithm 2); infeasible rows are pushed to ``inf``.
    """
    cols = []
    for pr in predicts:
        mu, var = pr(Xunit)
        cols.append(mu - 1.0 * np.sqrt(var))
    F = np.column_stack(cols)
    if feasible is not None:
        F[~np.asarray(feasible(Xunit), dtype=bool)] = np.inf
    return F


def _run_search_job(job):
    """Executor-mapped trampoline: run one per-task search job."""
    return job()


class _SearchSingleTask:
    """One task's whole EI/PSO search as a picklable executor job.

    The executor-parallel fallback (``Options.search_backend``) dispatches
    entire per-task searches across workers — the paper's Sec. 4.2 parallel
    search phase — when lockstep batching is impossible.  Returns the
    proposed unit-cube positions ``(q, dim)``.
    """

    def __init__(
        self,
        problem: TuningProblem,
        model,
        task_index: int,
        task: Mapping[str, Any],
        y_best: float,
        featurizer: Optional[ModelFeaturizer],
        n_particles: int,
        iterations: int,
        q: int,
        seed: int,
        x0: np.ndarray,
    ):
        self.problem = problem
        self.model = model
        self.task_index = int(task_index)
        self.task = dict(task)
        self.y_best = float(y_best)
        self.featurizer = featurizer
        self.n_particles = int(n_particles)
        self.iterations = int(iterations)
        self.q = int(q)
        self.seed = seed
        self.x0 = np.asarray(x0, dtype=float)

    def __call__(self, _item=None) -> np.ndarray:
        space = self.problem.tuning_space
        model, task, feat = self.model, self.task, self.featurizer

        def predict(Xunit: np.ndarray):
            Xunit = np.atleast_2d(Xunit)
            if feat is not None:
                cfgs = [space.denormalize(u) for u in Xunit]
                Xin = feat.enrich(task, cfgs, Xunit, observe=False)
            else:
                Xin = Xunit
            return model.predict(self.task_index, Xin)

        acq = EIAcquisition(
            predict,
            y_best=self.y_best,
            feasibility=_feasibility_or_none(self.problem, task),
        )
        pso = ParticleSwarm(
            dim=space.dimension,
            n_particles=self.n_particles,
            iterations=self.iterations,
            seed=self.seed,
        )
        xunit, _ = pso.maximize(acq, x0=self.x0)
        if self.q > 1:
            return pso.top_batch(self.q)
        return xunit[None, :]


class _SearchMultiTask:
    """One task's whole NSGA-II search as a picklable executor job.

    Returns ``(Xf, Ff, popX, popF)`` — the first front plus the final
    population so the driver's ``_pick_k`` can top up short fronts.
    """

    def __init__(
        self,
        problem: TuningProblem,
        models: List,
        task_index: int,
        task: Mapping[str, Any],
        featurizer: Optional[ModelFeaturizer],
        pop_size: int,
        generations: int,
        seed: int,
        x0: np.ndarray,
    ):
        self.problem = problem
        self.models = list(models)
        self.task_index = int(task_index)
        self.task = dict(task)
        self.featurizer = featurizer
        self.pop_size = int(pop_size)
        self.generations = int(generations)
        self.seed = seed
        self.x0 = np.asarray(x0, dtype=float)

    def __call__(self, _item=None):
        space = self.problem.tuning_space
        task, feat = self.task, self.featurizer

        def make_predict(model):
            def predict(Xunit: np.ndarray):
                Xunit = np.atleast_2d(Xunit)
                if feat is not None:
                    cfgs = [space.denormalize(u) for u in Xunit]
                    Xin = feat.enrich(task, cfgs, Xunit, observe=False)
                else:
                    Xin = Xunit
                return model.predict(self.task_index, Xin)

            return predict

        predicts = [make_predict(m) for m in self.models]
        feasible = _feasibility_or_none(self.problem, task)
        nsga = NSGA2(
            dim=space.dimension,
            pop_size=self.pop_size,
            generations=self.generations,
            seed=self.seed,
            label=f"task {self.task_index}",
        )
        Xf, Ff = nsga.minimize(lambda X: _mo_lcb(predicts, feasible, X), x0=self.x0)
        popX, popF = nsga.population
        return Xf, Ff, popX, popF


class IndependentGPs:
    """Degraded surrogate: one independent GP per task (no task coupling).

    Presents the same ``predict(task, Xstar)`` interface as the LCM so the
    acquisition search runs unchanged when the multitask fit breaks down.
    """

    def __init__(self, gps: List[Optional[GaussianProcess]]):
        self.gps = gps

    def predict(self, task: int, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance from the task's own GP."""
        gp = self.gps[int(task)]
        if gp is None:
            raise RuntimeError(f"task {task} has no fitted fallback surrogate")
        return gp.predict(Xstar)


class _YTransform:
    """Per-objective output transform for surrogate fitting."""

    def __init__(self, kind: str):
        self.kind = kind
        self.mean = 0.0
        self.std = 1.0

    def fit(self, y: np.ndarray) -> np.ndarray:
        v = np.log(np.maximum(y, 1e-300)) if self.kind == "log" else np.asarray(y, float)
        if self.kind == "none":
            self.mean, self.std = 0.0, 1.0
            return v.copy()
        self.mean = float(v.mean())
        self.std = float(v.std()) or 1.0
        return (v - self.mean) / self.std

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Apply the fitted transform without re-estimating mean/std.

        The posterior-extension path must feed new observations to a model
        in exactly the units the model was fitted in, so intermediate
        iterations reuse the last full refit's statistics.
        """
        v = np.log(np.maximum(y, 1e-300)) if self.kind == "log" else np.asarray(y, float)
        if self.kind == "none":
            return v.copy()
        return (v - self.mean) / self.std


class GPTune:
    """Multitask Bayesian-optimization autotuner.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.TuningProblem` to tune.
    options:
        Algorithm knobs; see :class:`~repro.core.options.Options`.
    history:
        Optional archive with ``records(name)`` / ``append(name, records)``
        — a :class:`~repro.core.history.HistoryDB`, a
        :class:`~repro.service.store.ShardedStore`, or a remote
        :class:`~repro.service.client.ServiceClient`.  Matching archived
        evaluations seed the model for free, and new evaluations are
        archived (crowd tuning: concurrent campaigns may share one archive).
    model_cache:
        Optional :class:`~repro.service.modelcache.SurrogateCache`.  Before
        each modeling phase the cache is consulted with the content
        fingerprints of the current data; on a subset/superset hit the LCM
        warm-starts from the cached hyperparameters with a single L-BFGS
        start instead of ``options.n_start`` cold multi-starts, and every
        successful fit is cached for the next campaign.  May also be set via
        ``options.model_cache_path``.
    scheduler:
        Optional async-engine scheduler override for
        ``options.async_eval`` campaigns (any object with the
        ``start``/``wait``/``remaining``/``shutdown`` protocol of
        :mod:`repro.runtime.async_engine`).  Tests and benchmarks inject a
        :class:`~repro.runtime.async_engine.SimScheduler` here; by default
        the scheduler is built from ``options.backend``/``n_workers``.
    """

    def __init__(
        self,
        problem: TuningProblem,
        options: Optional[Options] = None,
        history: Optional[HistoryDB] = None,
        model_cache: Optional[Any] = None,
        scheduler: Optional[Any] = None,
    ):
        self.problem = problem
        self.options = options or Options()
        self.history = history
        self._scheduler = scheduler
        self.model_cache = model_cache
        if self.model_cache is None and self.options.model_cache_path is not None:
            from ..service.modelcache import SurrogateCache

            self.model_cache = SurrogateCache(self.options.model_cache_path)
        self.events = CampaignLog()
        self.metrics = MetricsRegistry()
        self._seeds = np.random.SeedSequence(self.options.seed)
        self._executor = None
        self._search_executor = None
        self._search_mode_last: Optional[str] = None
        # per-campaign modeling state (reset by tune()): warm-refit carryover
        # per objective, GP-ladder carryover per (objective, task), the
        # modeling-phase counter driving refit_interval, and the incremental
        # content-fingerprint accumulator for the surrogate cache
        self._warm_state: Dict[int, Dict[str, Any]] = {}
        self._warm_gp_theta: Dict[Tuple[int, int], np.ndarray] = {}
        self._fit_iter = 0
        self._fp_state: Optional[Dict[str, Any]] = None
        self._feat_state: Optional[Dict[str, Any]] = None
        self._model_backend_last: Dict[int, str] = {}
        self._retry = RetryPolicy(
            max_attempts=self.options.retry_attempts,
            timeout=self.options.eval_timeout,
            backoff=self.options.retry_backoff,
            backoff_factor=self.options.retry_backoff_factor,
            jitter=self.options.retry_jitter,
            seed=self.options.seed,
        )

    # -- internals ---------------------------------------------------------
    def _child_seed(self) -> int:
        return int(self._seeds.spawn(1)[0].generate_state(1)[0])

    def _get_executor(self):
        if self.options.backend == "serial":
            return None
        if self._executor is None:
            from ..runtime.executor import make_executor

            self._executor = make_executor(
                self.options.backend, self.options.n_workers, on_event=self.events.record
            )
        return self._executor

    def _get_search_executor(self):
        """Executor for whole-search-per-task dispatch (``search_backend``)."""
        if self.options.search_backend == "serial":
            return None
        if self._search_executor is None:
            from ..runtime.executor import make_executor

            self._search_executor = make_executor(
                self.options.search_backend,
                self.options.n_workers,
                on_event=self.events.record,
            )
        return self._search_executor

    def _select_search_mode(self, models: Sequence[Any], featurizer) -> str:
        """Pick the search-phase execution path for this iteration.

        ``"batched"`` — lockstep cross-task batching — needs a healthy
        surrogate with a cross-task ``predict_tasks`` posterior for every
        objective (the exact and sparse LCM backends have one; the per-task
        GP rung does not) and no per-task performance-model enrichment
        (enriched inputs differ per task, so candidate blocks cannot share
        kernels).  Otherwise the per-task searches are dispatched over
        ``search_backend`` (``"executor"``) or run in the sequential
        reference loop.
        """
        if (
            self.options.search_batched
            and featurizer is None
            and len(models) > 0
            and all(callable(getattr(m, "predict_tasks", None)) for m in models)
        ):
            return "batched"
        if self.options.search_backend != "serial":
            return "executor"
        return "sequential"

    def _note_search_mode(self, mode: str, algo: str, n_tasks: int) -> None:
        """Record a ``search-mode`` event when the execution path changes."""
        if mode != self._search_mode_last:
            self._search_mode_last = mode
            self.events.record(
                "search-mode",
                f"{algo}: {mode} search over {n_tasks} task(s)",
                mode=mode,
                algo=algo,
                n_tasks=n_tasks,
            )

    def _note_model_backend(self, backend: str, objective: int, n_obs: int) -> None:
        """Record a ``model-backend`` event when an objective's backend changes.

        With ``model_backend="auto"`` this captures the escalation from the
        exact to the sparse backend as the campaign's data crosses
        ``sparse_threshold`` — the report surfaces which backends a
        campaign actually used.
        """
        if self._model_backend_last.get(objective) != backend:
            self._model_backend_last[objective] = backend
            self.events.record(
                "model-backend",
                f"objective {objective}: {backend} at n={n_obs}",
                backend=backend,
                objective=objective,
                n=n_obs,
            )

    def _evaluate(self, data: TuningData, task: int, cfg: Mapping[str, Any], stats) -> None:
        with maybe_span("phase.evaluation", task=task):
            outcome = self.problem.evaluate_outcome(data.tasks[task], cfg, retry=self._retry)
        self._record(data, task, cfg, outcome, stats)

    def _record(self, data: TuningData, task: int, cfg, outcome, stats) -> None:
        """Absorb one evaluation outcome: log, stats, data, history, metrics."""
        for kind, detail in outcome.events:
            self.events.record(kind, detail)
        self.metrics.inc("repro_evaluations_total")
        if outcome.attempts > 1:
            self.metrics.inc("repro_eval_retries_total", outcome.attempts - 1)
        stats["objective_wall_time"] += outcome.wall_time
        stats["n_retries"] += outcome.attempts - 1
        if outcome.failed:
            self.metrics.inc("repro_eval_failures_total", kind=outcome.failure_kind or "")
            stats["n_eval_failures"] += 1
        y = outcome.value
        stats["objective_time"] += float(y[0])
        data.add(task, cfg, y)
        if self.history is not None:
            self.history.append(
                self.problem.name,
                [{"task": data.tasks[task], "x": data.X[task][-1], "y": [float(v) for v in y]}],
            )

    def _checkpoint(
        self,
        data: TuningData,
        n_samples: int,
        frozen: Sequence[int],
        iteration: int,
        stats,
        pending: Optional[List[Dict[str, Any]]] = None,
        modeling: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write the resumable campaign snapshot (if configured).

        ``pending`` carries an async campaign's in-flight evaluations
        (``{"task", "x", "eta"}`` in submission order) so a resumed run can
        resubmit them with their remaining durations preserved.  ``modeling``
        carries the posterior-extension warm state (see
        :meth:`_modeling_snapshot`) so ``refit_interval > 1`` resumes stay
        bit-identical.
        """
        path = self.options.checkpoint_path
        if path is None or iteration % self.options.checkpoint_every != 0:
            return
        ck = RunCheckpoint(
            problem=self.problem.name,
            entropy=self._seeds.entropy,
            spawn_count=int(self._seeds.n_children_spawned),
            n_samples=int(n_samples),
            tasks=[dict(t) for t in data.tasks],
            frozen=sorted(int(i) for i in frozen),
            iteration=int(iteration),
            stats={k: float(v) for k, v in stats.items()},
            X=[[dict(x) for x in xs] for xs in data.X],
            Y=[[[float(v) for v in y] for y in ys] for ys in data.Y],
            pending=list(pending or []),
            modeling=modeling,
        )
        ck.save(path)
        self.events.record("checkpoint", f"iteration {iteration} -> {path}")

    def _seen_keys(self, data: TuningData, task: int) -> set:
        # incremental per-task set maintained by TuningData.add — O(1) per
        # lookup instead of rebuilding the set for every proposal
        return data.seen_keys(task)

    def _fingerprints(self, data: TuningData) -> Optional[frozenset]:
        """Content fingerprints of the current data, accumulated incrementally.

        Records are append-only per task, so only rows beyond the last
        hashed count are fingerprinted — the old code re-hashed every record
        on every modeling phase.  Returns ``None`` when no surrogate cache
        is attached.
        """
        if self.model_cache is None:
            return None
        from ..service.store import content_fingerprint

        st = self._fp_state
        if st is None or st["data"] is not data:
            st = {"data": data, "counts": [0] * data.n_tasks, "fps": set()}
            self._fp_state = st
        for i, task in enumerate(data.tasks):
            xs, ys = data.X[i], data.Y[i]
            for k in range(st["counts"][i], len(xs)):
                st["fps"].add(
                    content_fingerprint(
                        {"task": dict(task), "x": dict(xs[k]), "y": [float(v) for v in ys[k]]}
                    )
                )
            st["counts"][i] = len(xs)
        return frozenset(st["fps"])

    # -- main entry -----------------------------------------------------------
    def tune(
        self,
        tasks: Sequence[Any],
        n_samples: int,
        preload: Optional[Sequence[Mapping[str, Any]]] = None,
        frozen: Optional[Sequence[int]] = None,
        callback: Optional[Any] = None,
        _resume: Optional[RunCheckpoint] = None,
    ) -> TuneResult:
        """Run MLA over the given tasks with per-task budget ``ε_tot``.

        Parameters
        ----------
        tasks:
            δ native task values (mappings or positional sequences).
        n_samples:
            ε_tot — total function evaluations per task (>= 2).
        preload:
            Optional archived records (``{"task", "x", "y"}`` dicts, as
            produced by :meth:`TuningData.to_records`) absorbed before the
            sampling phase; matching-task records count toward the budget.
        frozen:
            Task indices that receive **no new evaluations**: their
            (preloaded) data only informs the shared LCM.  Used by transfer
            learning (:mod:`repro.core.tla`) to tune a new task against
            completed source tasks.
        callback:
            Optional ``callback(iteration, data, stats) -> bool`` invoked
            after every MLA iteration; returning True stops tuning early
            (anytime usage).  ``options.max_seconds`` adds a wall-clock cap.
        _resume:
            Internal — a :class:`~repro.runtime.resilience.RunCheckpoint` to
            continue from; use :meth:`resume`.

        Returns
        -------
        :class:`TuneResult`
        """
        if n_samples < 2:
            raise ValueError("need n_samples >= 2 (initial design + BO)")
        if _resume is not None:
            # Validate before touching the checkpoint's tasks: coercing them
            # through the wrong problem's task space fails confusingly.
            if _resume.problem != self.problem.name:
                raise ValueError(
                    f"checkpoint is for problem {_resume.problem!r}, "
                    f"not {self.problem.name!r}"
                )
            if int(_resume.n_samples) != int(n_samples):
                raise ValueError(
                    f"checkpoint budget {_resume.n_samples} != requested {n_samples}"
                )
        recorder: Optional[SpanRecorder] = None
        prev_recorder = None
        if self.options.telemetry:
            recorder = SpanRecorder(log=self.events, metrics=self.metrics)
            prev_recorder = install_recorder(recorder)
        try:
            return self._tune_impl(tasks, n_samples, preload, frozen, callback, _resume)
        finally:
            if recorder is not None:
                recorder.flush()
                install_recorder(prev_recorder)

    def _tune_impl(
        self,
        tasks: Sequence[Any],
        n_samples: int,
        preload: Optional[Sequence[Mapping[str, Any]]],
        frozen: Optional[Sequence[int]],
        callback: Optional[Any],
        _resume: Optional[RunCheckpoint],
    ) -> TuneResult:
        """The MLA loop proper (:meth:`tune` handles validation/telemetry)."""
        gamma = self.problem.n_objectives
        data = TuningData(
            self.problem.task_space, self.problem.tuning_space, tasks, n_objectives=gamma
        )
        frozen_set = set(int(i) for i in (frozen or ()))
        if any(i < 0 or i >= data.n_tasks for i in frozen_set):
            raise ValueError("frozen task index out of range")
        active = [i for i in range(data.n_tasks) if i not in frozen_set]
        if not active:
            raise ValueError("all tasks frozen; nothing to tune")
        # modeling carryover is per-campaign: start this one cold
        self._warm_state = {}
        self._warm_gp_theta = {}
        self._fit_iter = 0
        self._fp_state = None
        self._feat_state = None
        self._search_mode_last = None
        self._model_backend_last = {}
        stats = {
            "objective_time": 0.0,
            "objective_wall_time": 0.0,
            "modeling_time": 0.0,
            "search_time": 0.0,
            "n_retries": 0.0,
            "n_eval_failures": 0.0,
        }

        resume_children: List[np.random.SeedSequence] = []
        if _resume is not None:
            # Restore the exact campaign state: evaluation sets, phase stats,
            # and the seed tree fast-forwarded past every child already spawned,
            # so the continuation takes the same decisions the uninterrupted
            # run would have.  The already-spawned children are kept: the
            # async path re-derives its design-sampler seed from children[0].
            self._seeds = np.random.SeedSequence(_resume.entropy)
            if _resume.spawn_count > 0:
                resume_children = self._seeds.spawn(int(_resume.spawn_count))
            for i, (xs, ys) in enumerate(zip(_resume.X, _resume.Y)):
                for x, y in zip(xs, ys):
                    data.add(i, x, y)
            for k, v in _resume.stats.items():
                if k in stats:
                    stats[k] = float(v)
            self.events.record(
                "resume",
                f"iteration {_resume.iteration}, {data.n_samples()} evaluation(s) restored",
            )
        else:
            # archived data counts toward the budget for free (reuse goal)
            if self.history is not None:
                data.load_records(self.history.records(self.problem.name))
            if preload is not None:
                data.load_records(preload)
        for i in frozen_set:
            if data.n_samples(i) == 0:
                raise ValueError(f"frozen task {i} has no preloaded data")

        if self.options.async_eval:
            reason = self._async_unsupported_reason()
            if reason is None:
                return self._tune_async(
                    data, stats, active, frozen_set, n_samples, callback,
                    _resume, resume_children,
                )
            if _resume is not None and _resume.pending:
                raise ValueError(
                    f"checkpoint holds {len(_resume.pending)} in-flight "
                    "evaluation(s): it was written by an async campaign, but "
                    "the current problem no longer qualifies for streaming "
                    f"({reason})"
                )
            if not self.options.allow_async_fallback:
                raise ValueError(
                    f"async_eval: {reason}; pass "
                    "Options(allow_async_fallback=True) to run this campaign "
                    "through the lockstep loop instead"
                )
            self.events.record(
                "async-fallback",
                f"{reason}; running lockstep (allow_async_fallback)",
                reason=reason,
                gamma=gamma,
                has_models=self.problem.has_models,
            )
        if _resume is not None and _resume.pending:
            raise ValueError(
                f"checkpoint holds {len(_resume.pending)} in-flight "
                "evaluation(s) from an async campaign; resume with "
                "Options(async_eval=True) or they would be lost"
            )

        # -- sampling phase ------------------------------------------------
        eps_init = max(2, int(round(n_samples * self.options.initial_fraction)))
        if any(eps_init - data.n_samples(i) > 0 for i in active):
            # design generation is the "sampling" span; the objective runs it
            # feeds are "evaluation" spans — disjoint, Table-3 style
            with maybe_span("phase.sampling", eps_init=eps_init) as sp:
                sampler = LHSSampler(self.problem.tuning_space, seed=self._child_seed())
                design: List[Tuple[int, Dict[str, Any]]] = []
                for i in active:
                    need = eps_init - data.n_samples(i)
                    if need <= 0:
                        continue
                    for cfg in sampler.sample(need, extra=data.tasks[i]):
                        design.append((i, cfg))
                sp.annotate(n_configs=len(design))
            for i, cfg in design:
                self._evaluate(data, i, cfg, stats)

        # -- MLA iterations ----------------------------------------------------
        models: List[LCM] = []
        t_begin = time.perf_counter()
        iteration = int(_resume.iteration) if _resume is not None else 0
        self._checkpoint(data, n_samples, frozen_set, iteration, stats)
        while min(data.n_samples(i) for i in active) < n_samples:
            if gamma == 1:
                models = self._iteration_single(data, stats, active)
            else:
                models = self._iteration_multi(data, stats, active)
            iteration += 1
            self._checkpoint(data, n_samples, frozen_set, iteration, stats)
            if self.options.verbose:  # pragma: no cover - logging
                done = [data.n_samples(i) for i in range(data.n_tasks)]
                best = [f"{data.best(i)[1]:.4g}" for i in range(data.n_tasks)]
                print(f"[gptune] samples={done} best={best}")
            if callback is not None and callback(iteration, data, stats):
                break
            if (
                self.options.max_seconds is not None
                and time.perf_counter() - t_begin >= self.options.max_seconds
            ):
                break

        stats["total_time"] = (
            stats["objective_time"] + stats["modeling_time"] + stats["search_time"]
        )
        # the final stats event makes an exported telemetry file self-contained:
        # `repro report` checks the span sums against these authoritative totals
        self.events.record(
            "stats",
            "campaign phase totals",
            **{k: float(v) for k, v in stats.items()},
        )
        return TuneResult(data, stats, models, events=self.events, metrics=self.metrics)

    def resume(
        self,
        checkpoint: Any,
        callback: Optional[Any] = None,
    ) -> TuneResult:
        """Continue a killed campaign from a checkpoint.

        Parameters
        ----------
        checkpoint:
            A :class:`~repro.runtime.resilience.RunCheckpoint` or the path of
            one written by a run with ``options.checkpoint_path`` set.
        callback:
            Same contract as in :meth:`tune` (callbacks are not serialized,
            so pass it again here).

        The resumed run restores the evaluation sets, iteration counter, and
        RNG state, then continues to the original budget.  Together with a
        fixed ``options.seed`` this reproduces exactly the evaluations the
        uninterrupted run would have made.
        """
        ck = (
            checkpoint
            if isinstance(checkpoint, RunCheckpoint)
            else RunCheckpoint.load(str(checkpoint))
        )
        return self.tune(
            ck.tasks,
            ck.n_samples,
            frozen=ck.frozen or None,
            callback=callback,
            _resume=ck,
        )

    # -- asynchronous streaming campaign (Options.async_eval) ------------------
    def _tune_async(
        self,
        data: TuningData,
        stats,
        active: Sequence[int],
        frozen_set,
        n_samples: int,
        callback: Optional[Any],
        _resume: Optional[RunCheckpoint],
        resume_children: List[np.random.SeedSequence],
    ) -> TuneResult:
        """Streaming MLA: bounded in-flight queue instead of lockstep barriers.

        The loop per round: (1) refit/extend the posterior on everything
        absorbed so far (skipped while ``options.async_refit_secs`` has not
        elapsed since the last modeling phase), (2) *fill* free queue slots
        with proposals against the freshest posterior (design entries first,
        then penalized acquisition search — EI/PSO for γ = 1, NSGA-II LCB
        for γ > 1 — always the task with the fewest committed evaluations),
        (3) *drain* — block until at least one evaluation lands — and absorb
        the completions in submission-sequence order.  One straggling
        evaluation holds exactly one slot; every other task keeps streaming.
        Performance models ride along: one persistent
        :class:`ModelFeaturizer` enriches training rows, candidates, and
        pending points, frozen during posterior-extension phases so extended
        rows stay in the units the model was fitted in.

        Determinism: drain batches are seq-sorted by the engine, every
        seed-consuming decision spawns its own seed-tree child in published
        order, the LHS design is regenerated on resume from the campaign's
        *first* child seed, and checkpoints carry the posterior-extension
        warm state — so under a deterministic scheduler a killed+resumed
        campaign is bit-identical to the uninterrupted one, including with
        ``refit_interval > 1`` (see docs/ASYNC.md).
        """
        opts = self.options
        space = data.tuning_space
        gamma = data.n_objectives
        featurizer = (
            ModelFeaturizer(self.problem.models) if self.problem.has_models else None
        )

        # The design sampler seed is unconditionally the async campaign's
        # first seed-tree child, so a resumed run re-derives it from
        # children[0] instead of spawning anew.
        if _resume is not None:
            design_seed = int(resume_children[0].generate_state(1)[0])
        else:
            design_seed = self._child_seed()
        eps_init = max(2, int(round(n_samples * opts.initial_fraction)))
        with maybe_span("phase.sampling", eps_init=eps_init, mode="async") as sp:
            sampler = LHSSampler(space, seed=design_seed)
            design = {
                i: sampler.sample(eps_init, extra=data.tasks[i]) for i in active
            }
            sp.annotate(n_configs=sum(len(v) for v in design.values()))
        design_ptr = {i: 0 for i in active}

        scheduler = self._scheduler
        if scheduler is None:
            scheduler = make_scheduler(
                opts.backend, opts.n_workers, on_event=self.events.record
            )
        max_inflight = (
            int(opts.max_inflight)
            if opts.max_inflight is not None
            else max(2, opts.n_workers)
        )
        eng = AsyncEvalEngine(
            _AsyncEval(self.problem, [dict(t) for t in data.tasks], self._retry),
            scheduler,
            max_inflight,
        )
        self.events.record(
            "async-start",
            f"{type(scheduler).__name__}, max_inflight={max_inflight}, "
            f"penalty={opts.pending_penalty}",
            scheduler=type(scheduler).__name__,
            max_inflight=max_inflight,
            penalty=opts.pending_penalty,
        )

        # per-task in-flight bookkeeping: normalized-key -> (unit point,
        # native config) — the unit point feeds the pending penalty and
        # dedup, the native config lets the featurizer enrich pending points
        # — plus a plain count (key collisions in an exhausted discrete
        # space must not undercount slots)
        pend_units: List[Dict[tuple, Tuple[np.ndarray, Dict[str, Any]]]] = [
            {} for _ in range(data.n_tasks)
        ]
        inflight_cnt = [0] * data.n_tasks

        def unit_key(cfg):
            u = space.normalize(cfg)
            return tuple(np.round(u, 9)), u

        def submit(i, cfg, eta=None):
            key, u = unit_key(cfg)
            eng.submit(i, cfg, eta=eta)
            pend_units[i][key] = (u, dict(cfg))
            inflight_cnt[i] += 1

        if _resume is not None:
            self._restore_modeling_state(_resume.modeling, data, featurizer)
            for entry in _resume.pending:
                submit(int(entry["task"]), dict(entry["x"]), eta=entry.get("eta"))

        def next_design(i):
            # next unconsumed design entry whose key is neither evaluated
            # nor in flight; the skip rule replays identically on resume
            seen = data.seen_keys(i)
            while design_ptr[i] < len(design[i]):
                cfg = design[i][design_ptr[i]]
                design_ptr[i] += 1
                key, _ = unit_key(cfg)
                if key in seen or key in pend_units[i]:
                    continue
                return cfg
            return None

        bundle: Optional[Tuple[List[Any], List[_YTransform], List[np.ndarray]]] = None

        def fill():
            blocked = set()
            # γ > 1: one NSGA-II run buffers up to pareto_batch candidates
            # per task; the buffer lives only within this fill call, so a
            # resumed run (whose buffer starts empty) replays identically
            mo_buf: Dict[int, List[np.ndarray]] = {}
            while eng.can_submit:
                cands = [
                    i
                    for i in active
                    if i not in blocked
                    and data.n_samples(i) + inflight_cnt[i] < n_samples
                ]
                if not cands:
                    return
                # fewest committed (done + in-flight) evaluations first
                i = min(cands, key=lambda j: (data.n_samples(j) + inflight_cnt[j], j))
                cfg = None
                if data.n_samples(i) + inflight_cnt[i] < eps_init:
                    cfg = next_design(i)
                if cfg is None:
                    if gamma == 1:
                        cfg = self._propose_async(
                            data, i, bundle, pend_units, stats, featurizer
                        )
                    else:
                        cfg = self._propose_async_multi(
                            data, i, bundle, pend_units, stats, mo_buf
                        )
                if cfg is None:
                    # no surrogate yet: leave the slot open until the next fit
                    blocked.add(i)
                    continue
                submit(i, cfg)

        # periodic-refit cadence: with async_refit_secs set, modeling runs at
        # most once per interval — on the scheduler's virtual clock when it
        # has one (SimScheduler: deterministic), else on wall time
        sim_clock = getattr(scheduler, "clock", None)
        now = (
            (lambda: float(sim_clock.now)) if sim_clock is not None
            else time.perf_counter
        )
        last_fit: Optional[float] = None

        rounds = int(_resume.iteration) if _resume is not None else 0
        t_begin = time.perf_counter()
        total_wait = 0.0
        while min(data.n_samples(i) for i in active) < n_samples:
            # modeling precedes fill so proposals see every absorbed result;
            # on resume the first pass refits from the restored data before
            # anything new is submitted (the checkpoint is written pre-fit,
            # which is what keeps the resumed seed tree aligned)
            if min(data.n_samples(i) for i in active) >= 2 and (
                last_fit is None
                or opts.async_refit_secs is None
                or now() - last_fit >= opts.async_refit_secs
            ):
                bundle = self._fit_models(data, stats, featurizer, feat_extend=True)
                last_fit = now()
            fill()
            if eng.inflight == 0:
                break  # budget reached or nothing proposable
            with maybe_span("async.wait", inflight=eng.inflight) as sp:
                inflight_before = eng.inflight
                batch, wait_s = eng.drain()
                sp.annotate(n=len(batch), wait_s=wait_s)
            total_wait += wait_s
            for ce in batch:
                self._record(data, ce.task, ce.config, ce.outcome, stats)
                inflight_cnt[ce.task] -= 1
                key, _ = unit_key(ce.config)
                pend_units[ce.task].pop(key, None)
                if opts.telemetry:
                    # lockstep wraps each objective call in a live
                    # "phase.evaluation" span; here the call ran inside the
                    # scheduler, so emit the equivalent span event from the
                    # outcome's measured wall time — `repro report` sums match
                    self.events.record(
                        "span",
                        f"phase.evaluation {ce.outcome.wall_time * 1e3:.3f}ms",
                        name="phase.evaluation",
                        dur_s=float(ce.outcome.wall_time),
                        task=ce.task,
                        seq=ce.seq,
                        mode="async",
                    )
            self.metrics.set_gauge("repro_eval_inflight", float(eng.inflight))
            self.events.record(
                "async-drain",
                f"{len(batch)} completion(s) after {wait_s:.3g}s; "
                f"{eng.inflight} still in flight",
                n=len(batch),
                wait_s=float(wait_s),
                inflight=int(inflight_before),
            )
            rounds += 1
            self._checkpoint(
                data,
                n_samples,
                frozen_set,
                rounds,
                stats,
                pending=[
                    {"task": int(t), "x": dict(cfg), "eta": eta}
                    for (_seq, t, cfg, eta) in eng.pending_snapshot()
                ],
                modeling=self._modeling_snapshot(featurizer),
            )
            if self.options.verbose:  # pragma: no cover - logging
                done = [data.n_samples(i) for i in range(data.n_tasks)]
                print(f"[gptune] async round={rounds} samples={done} "
                      f"inflight={eng.inflight}")
            if callback is not None and callback(rounds, data, stats):
                break
            if (
                opts.max_seconds is not None
                and time.perf_counter() - t_begin >= opts.max_seconds
            ):
                break

        self.metrics.set_gauge("repro_eval_inflight", 0.0)
        self.events.record(
            "async-stop",
            f"{eng.submitted} submitted, {eng.completed} completed, "
            f"peak inflight {eng.peak_inflight}, "
            f"{total_wait:.3g}s total drain wait",
            submitted=int(eng.submitted),
            completed=int(eng.completed),
            peak_inflight=int(eng.peak_inflight),
            wait_s=float(total_wait),
        )
        eng.shutdown()
        models = list(bundle[0]) if bundle is not None else []
        stats["total_time"] = (
            stats["objective_time"] + stats["modeling_time"] + stats["search_time"]
        )
        self.events.record(
            "stats",
            "campaign phase totals",
            **{k: float(v) for k, v in stats.items()},
        )
        return TuneResult(data, stats, models, events=self.events, metrics=self.metrics)

    def _async_unsupported_reason(self) -> Optional[str]:
        """Why this campaign cannot stream, or ``None`` when it can.

        After multi-objective and performance-model support landed, the one
        remaining shape the async loop does not cover is their combination:
        per-task model enrichment is not wired into the async NSGA-II
        search.  The caller raises (or, with ``allow_async_fallback``,
        demotes to lockstep) instead of silently falling back.
        """
        if self.problem.n_objectives > 1 and self.problem.has_models:
            return (
                "multi-objective campaigns with performance models do not "
                "stream (per-task model enrichment is not wired into the "
                "async NSGA-II search)"
            )
        return None

    def _pending_matrix(
        self,
        data: TuningData,
        pend_units: List[Dict[tuple, Tuple[np.ndarray, Dict[str, Any]]]],
        featurizer: Optional[ModelFeaturizer],
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """All tasks' pending points stacked for the constant liar.

        Returns ``(X, task_index)`` in task-major submission order, with
        model features appended (frozen featurizer state) when the campaign
        enriches inputs — the liar's :meth:`LCM.extend` needs rows in the
        exact units the posterior was fitted in.  ``(None, None)`` when
        nothing is in flight.
        """
        blocks, tix = [], []
        for i in range(data.n_tasks):
            if not pend_units[i]:
                continue
            units = np.vstack([u for (u, _) in pend_units[i].values()])
            if featurizer is not None:
                cfgs = [c for (_, c) in pend_units[i].values()]
                units = featurizer.enrich(data.tasks[i], cfgs, units, observe=False)
            blocks.append(units)
            tix.extend([i] * len(pend_units[i]))
        if not blocks:
            return None, None
        return np.vstack(blocks), np.asarray(tix, dtype=int)

    def _propose_async(
        self,
        data: TuningData,
        task: int,
        bundle,
        pend_units: List[Dict[tuple, Tuple[np.ndarray, Dict[str, Any]]]],
        stats,
        featurizer: Optional[ModelFeaturizer] = None,
    ) -> Optional[Dict[str, Any]]:
        """One streaming proposal for ``task`` against the current posterior.

        EI is maximized with the in-flight set discounted per
        ``options.pending_penalty``: ``"cl"`` extends a copy of the
        posterior with incumbent-valued lies at every pending point (all
        tasks — cross-task correlations steer every task away), falling
        back to local penalization when the copy/extend is impossible
        (e.g. the :class:`IndependentGPs` rung); ``"lp"`` multiplies EI by
        the compactly supported distance penalty over this task's pending
        points; ``"none"`` relies on dedup alone.  Returns ``None`` before
        the first model fit — the caller leaves the slot open.
        """
        if bundle is None:
            return None
        models, _transforms, ybests = bundle
        space = data.tuning_space
        opts = self.options
        t0 = time.perf_counter()
        with maybe_span("phase.search", algo="pso-ei", mode="async", task=task):
            rng = np.random.default_rng(self._child_seed())
            extra = set(pend_units[task])
            model = models[0]
            if model is None:  # fully degraded: random search
                cand = sample_feasible(
                    space, 1, rng, extra=data.tasks[task]
                )[0]
                cfg = self._dedup(data, task, cand, rng, extra=extra)
            else:
                yb = ybests[0]
                acq_model = model
                penalize = False
                if opts.pending_penalty == "cl":
                    P, tix = self._pending_matrix(data, pend_units, featurizer)
                    if P is not None:
                        finite = yb[np.isfinite(yb)]
                        fallback_lie = float(finite.max()) if finite.size else 0.0
                        lies = np.array(
                            [
                                yb[i] if np.isfinite(yb[i]) else fallback_lie
                                for i in tix
                            ]
                        )
                        liar = constant_liar(model, P, tix, lies)
                        if liar is not None:
                            acq_model = liar
                        else:
                            penalize = True  # cl impossible: local penalization
                elif opts.pending_penalty == "lp":
                    penalize = True
                acq = EIAcquisition(
                    self._predict_unit(acq_model, task, data.tasks[task], featurizer),
                    y_best=float(yb[task]),
                    feasibility=_feasibility_or_none(self.problem, data.tasks[task]),
                )
                if penalize and extra:
                    acq = PenalizedAcquisition(
                        acq,
                        np.vstack([u for (u, _) in pend_units[task].values()]),
                        opts.penalty_radius,
                    )
                pso = ParticleSwarm(
                    dim=space.dimension,
                    n_particles=opts.ei_candidates,
                    iterations=opts.pso_iters,
                    seed=int(rng.integers(2**31)),
                )
                x0 = space.normalize(data.best(task)[0])[None, :]
                xunit, _ = pso.maximize(acq, x0=x0)
                cfg = self._dedup(data, task, space.denormalize(xunit), rng, extra=extra)
        stats["search_time"] += time.perf_counter() - t0
        return cfg

    def _propose_async_multi(
        self,
        data: TuningData,
        task: int,
        bundle,
        pend_units: List[Dict[tuple, Tuple[np.ndarray, Dict[str, Any]]]],
        stats,
        mo_buf: Dict[int, List[np.ndarray]],
    ) -> Optional[Dict[str, Any]]:
        """One streaming multi-objective proposal for ``task`` (γ > 1).

        Per-objective LCB rows feed the per-task NSGA-II exactly as in the
        lockstep Algorithm 2, with the in-flight set discounted per
        objective: ``"cl"`` extends a copy of each objective's posterior
        with that objective's incumbent lies at every pending point;
        ``"lp"`` shrinks each objective's predicted improvement via
        :func:`~repro.core.search.penalty.penalize_lcb` (the multiplicative
        EI penalty is meaningless for a signed, minimized LCB).  One run
        buffers up to ``pareto_batch`` crowding-selected candidates in
        ``mo_buf`` — subsequent slots for the same task within one fill
        round pop the buffer instead of re-running the search.
        """
        if bundle is None:
            return None
        models, _transforms, ybests = bundle
        space = data.tuning_space
        opts = self.options
        gamma = data.n_objectives
        t0 = time.perf_counter()
        with maybe_span("phase.search", algo="nsga2", mode="async", task=task):
            rng = np.random.default_rng(self._child_seed())
            extra = set(pend_units[task])
            if any(m is None for m in models):  # degraded: random search
                cand = sample_feasible(space, 1, rng, extra=data.tasks[task])[0]
                cfg = self._dedup(data, task, cand, rng, extra=extra)
                stats["search_time"] += time.perf_counter() - t0
                return cfg
            cands = mo_buf.get(task)
            if not cands:
                acq_models, lp_flags = [], []
                P, tix = (
                    self._pending_matrix(data, pend_units, None)
                    if opts.pending_penalty == "cl"
                    else (None, None)
                )
                for s in range(gamma):
                    m = models[s]
                    lp = opts.pending_penalty == "lp"
                    if opts.pending_penalty == "cl" and P is not None:
                        yb = ybests[s]
                        finite = yb[np.isfinite(yb)]
                        fallback_lie = float(finite.max()) if finite.size else 0.0
                        lies = np.array(
                            [
                                yb[i] if np.isfinite(yb[i]) else fallback_lie
                                for i in tix
                            ]
                        )
                        liar = constant_liar(m, P, tix, lies)
                        if liar is not None:
                            m = liar
                        else:
                            lp = True
                    acq_models.append(m)
                    lp_flags.append(lp)
                pend_task = (
                    np.vstack([u for (u, _) in pend_units[task].values()])
                    if pend_units[task]
                    else None
                )
                feasible = _feasibility_or_none(self.problem, data.tasks[task])
                ybt = [float(ybests[s][task]) for s in range(gamma)]

                def obj(X: np.ndarray) -> np.ndarray:
                    X = np.atleast_2d(X)
                    cols = []
                    for s in range(gamma):
                        mu, var = acq_models[s].predict(task, X)
                        lcb = mu - np.sqrt(var)
                        if lp_flags[s] and pend_task is not None:
                            lcb = penalize_lcb(
                                lcb, X, pend_task, opts.penalty_radius, ybt[s]
                            )
                        cols.append(lcb)
                    F = np.column_stack(cols)
                    if feasible is not None:
                        F[~np.asarray(feasible(X), dtype=bool)] = np.inf
                    return F

                nsga = NSGA2(
                    dim=space.dimension,
                    pop_size=opts.nsga_pop,
                    generations=opts.nsga_gens,
                    seed=int(rng.integers(2**31)),
                    label=f"task {task}",
                )
                Xf, Ff = nsga.minimize(obj, x0=self._pareto_seeds(data, task))
                cands = list(
                    self._pick_k(Xf, Ff, opts.pareto_batch, pool=nsga.population)
                )
                mo_buf[task] = cands
            seen = data.seen_keys(task)
            picked = None
            while cands:
                u = cands.pop(0)
                cand = space.denormalize(u)
                picked = cand
                key = tuple(np.round(space.normalize(cand), 9))
                if key not in seen and key not in extra:
                    break
            if picked is None:  # exhausted buffer of stale picks
                picked = sample_feasible(space, 1, rng, extra=data.tasks[task])[0]
            cfg = self._dedup(data, task, picked, rng, extra=extra)
        stats["search_time"] += time.perf_counter() - t0
        return cfg

    # -- single-objective iteration (Algorithm 1) ------------------------------
    def _fit_models(
        self,
        data: TuningData,
        stats,
        featurizer: Optional[ModelFeaturizer],
        feat_extend: bool = False,
    ) -> Tuple[List[LCM], List[_YTransform], List[np.ndarray]]:
        """Model-update + modeling phases; returns per-objective surrogates.

        With ``options.refit_interval > 1``, intermediate modeling phases
        extend each objective's fitted posterior with the new observations
        (O(N²·n_new), no L-BFGS) instead of refitting; every k-th phase (and
        any phase where extension is impossible) runs a full fit, warm-started
        from the previous optimum when ``options.refit_warm_start`` is on.

        ``feat_extend`` opts model-enriched campaigns into the extension
        path: only valid when ``featurizer`` is a *persistent* instance
        whose hyperparameters/normalization the caller freezes between full
        fits (the async loop), never for the per-iteration throwaway
        featurizer of the lockstep loop, whose re-estimated features would
        silently change the units the posterior was fitted in.
        """
        with maybe_span("phase.modeling", n=data.n_samples()):
            return self._fit_models_impl(data, stats, featurizer, feat_extend)

    def _fit_models_impl(
        self,
        data: TuningData,
        stats,
        featurizer: Optional[ModelFeaturizer],
        feat_extend: bool = False,
    ) -> Tuple[List[LCM], List[_YTransform], List[np.ndarray]]:
        """Body of :meth:`_fit_models` (split out for phase-span scoping)."""
        t0 = time.perf_counter()
        gamma = data.n_objectives
        X, _, tidx = data.stacked(0)
        counts = [data.n_samples(i) for i in range(data.n_tasks)]
        extend_phase = (
            self.options.refit_interval > 1
            and self._fit_iter % self.options.refit_interval != 0
            and (featurizer is None or feat_extend)
        )

        if featurizer is not None:
            # Extend phases must feed the posterior rows in the units it was
            # fitted in, so the featurizer is frozen (no hyperparameter
            # update, no normalization-range growth) whenever every
            # objective still has a warm posterior to extend.
            update = not (
                extend_phase and all(s in self._warm_state for s in range(gamma))
            )
            if update:
                extend_phase = False
                tasks_flat = [data.tasks[i] for i in tidx]
                cfgs_flat = [x for xs in data.X for x in xs]
                y0 = np.array([data.Y[i][j][0] for i in range(data.n_tasks) for j in range(len(data.Y[i]))])
                featurizer.update_hyperparameters(tasks_flat, cfgs_flat, y0)
            raw = self._feat_rows(data, featurizer)
            if update:
                featurizer.observe(raw)
            X = np.hstack([X, featurizer.scale(raw)])

        models, transforms, ybests = [], [], []
        executor = self._get_executor() if self.options.model_restarts_parallel else None
        fingerprints = self._fingerprints(data)
        for s in range(gamma):
            _, ys, _ = data.stacked(s)
            model = tr = None
            if extend_phase:
                model = self._extend_surrogate(data, s, counts, featurizer)
            if model is not None:
                tr = self._warm_state[s]["transform"]
                yt = tr.transform(ys)
            else:
                tr = _YTransform(self.options.y_transform)
                yt = tr.fit(ys)
                model = self._fit_surrogate(data, X, yt, tidx, executor, s, fingerprints)
                if (featurizer is None or feat_extend) and isinstance(
                    model, (LCM, SparseLCM)
                ):
                    self._warm_state[s] = {
                        "model": model,
                        "transform": tr,
                        "counts": list(counts),
                        "chunks": [list(counts)],
                    }
                else:
                    self._warm_state.pop(s, None)
            models.append(model)
            transforms.append(tr)
            # per-task incumbents in transformed units
            ybests.append(
                np.array(
                    [yt[tidx == i].min() if np.any(tidx == i) else np.inf for i in range(data.n_tasks)]
                )
            )
        self._fit_iter += 1
        stats["modeling_time"] += time.perf_counter() - t0
        return models, transforms, ybests

    def _feat_rows(self, data: TuningData, featurizer: ModelFeaturizer) -> np.ndarray:
        """Raw model-feature rows for every sample, cached incrementally.

        Model predictions depend only on the models' hyperparameters, so as
        long as the featurizer's :meth:`~ModelFeaturizer.state_token` is
        unchanged, rows computed in earlier phases stay valid and only the
        new samples cost a prediction — O(n_new) per refit instead of O(n),
        mirroring the ``_fingerprints`` cache.  A token change (or a model
        that cannot vouch for one) recomputes everything.
        """
        token = featurizer.state_token()
        st = self._feat_state
        if (
            token is None
            or st is None
            or st["data"] is not data
            or st["token"] != token
        ):
            st = {
                "data": data,
                "counts": [0] * data.n_tasks,
                "rows": [[] for _ in range(data.n_tasks)],
                "token": token,
            }
            self._feat_state = st if token is not None else None
        for i in range(data.n_tasks):
            for k in range(st["counts"][i], data.n_samples(i)):
                st["rows"][i].append(featurizer.raw(data.tasks[i], data.X[i][k]))
            st["counts"][i] = data.n_samples(i)
        rows = [r for rs in st["rows"] for r in rs]
        if not rows:
            return np.empty((0, featurizer.n_features))
        return np.vstack(rows)

    def _extend_surrogate(
        self,
        data: TuningData,
        objective: int,
        counts: Sequence[int],
        featurizer: Optional[ModelFeaturizer] = None,
    ) -> Optional[LCM]:
        """Extend the previous iteration's posterior with the new rows.

        With a (frozen) ``featurizer``, new rows are enriched with the model
        features before extension so they match the units the posterior was
        fitted in.  Returns the extended LCM, or ``None`` when extension is
        impossible (no previous fit, or the update fails numerically) — the
        caller then falls back to a full refit.
        """
        st = self._warm_state.get(objective)
        if st is None:
            return None
        model: LCM = st["model"]
        prev = st["counts"]
        space = data.tuning_space
        blocks, ys, tix, n_new = [], [], [], 0
        for i in range(data.n_tasks):
            if counts[i] <= prev[i]:
                continue
            cfgs = [data.X[i][k] for k in range(prev[i], counts[i])]
            units = np.vstack([space.normalize(c) for c in cfgs])
            if featurizer is not None:
                units = featurizer.enrich(data.tasks[i], cfgs, units, observe=False)
            blocks.append(units)
            ys.extend(data.Y[i][k][objective] for k in range(prev[i], counts[i]))
            tix.extend([i] * len(cfgs))
            n_new += len(cfgs)
        if blocks and np.vstack(blocks).shape[1] != model.params.beta:
            return None
        try:
            if blocks:
                yt_new = st["transform"].transform(np.asarray(ys, dtype=float))
                model.extend(np.vstack(blocks), yt_new, np.asarray(tix, dtype=int))
        except Exception as e:
            self.events.record(
                "model-downgrade",
                f"objective {objective}: posterior extension failed, refitting "
                f"({type(e).__name__}: {e})",
            )
            return None
        st["counts"] = list(counts)
        if blocks and "chunks" in st:
            # checkpointed so a resume can replay the *same* chunked extends
            # (one big extend is not bitwise equal to the chunked sequence)
            st["chunks"].append(list(counts))
        self.events.record(
            "model-extend",
            f"objective {objective}: n_new={n_new} n={model.y.shape[0]} n_starts=0",
        )
        return model

    def _modeling_snapshot(
        self, featurizer: Optional[ModelFeaturizer]
    ) -> Optional[Dict[str, Any]]:
        """Posterior-extension state for :class:`RunCheckpoint.modeling`.

        Captures what a resumed campaign cannot rederive from the data
        alone: the refit-cadence position (``fit_iter``), each objective's
        warm posterior (θ of the last full fit, its frozen output transform,
        and the per-extend chunk boundaries — replaying the same chunk
        sequence is what makes the rebuilt Cholesky bitwise identical), and
        the featurizer's hyperparameter/normalization state.  ``None`` when
        there is nothing to carry (single-interval refits without models),
        which keeps the checkpoint at schema version 1.
        """
        if self.options.refit_interval <= 1 and featurizer is None:
            return None
        warm: Dict[str, Any] = {}
        for s, st in self._warm_state.items():
            model = st.get("model")
            if type(model) is not LCM or model.theta is None or "chunks" not in st:
                continue  # sparse/GP fallbacks refit from scratch on resume
            tr: _YTransform = st["transform"]
            warm[str(s)] = {
                "theta": [float(v) for v in np.asarray(model.theta).ravel()],
                "transform": {
                    "kind": tr.kind,
                    "mean": float(tr.mean),
                    "std": float(tr.std),
                },
                "chunks": [[int(c) for c in chunk] for chunk in st["chunks"]],
            }
        snap: Dict[str, Any] = {"fit_iter": int(self._fit_iter), "warm": warm}
        if featurizer is not None:
            snap["featurizer"] = featurizer.get_state()
        return snap

    def _restore_modeling_state(
        self,
        snap: Optional[Dict[str, Any]],
        data: TuningData,
        featurizer: Optional[ModelFeaturizer],
    ) -> None:
        """Rebuild ``_fit_iter``/``_warm_state``/featurizer from a checkpoint.

        Every failure degrades to a cold start for that piece (a full refit
        on the next modeling phase) with a ``"model-downgrade"`` event —
        resuming must never be worse than starting the modeling over.
        """
        if not snap:
            return
        self._fit_iter = int(snap.get("fit_iter", 0))
        if featurizer is not None and snap.get("featurizer") is not None:
            try:
                featurizer.set_state(snap["featurizer"])
            except Exception as e:
                self.events.record(
                    "model-downgrade",
                    "featurizer state restore failed, re-estimating "
                    f"({type(e).__name__}: {e})",
                )
        for key, w in snap.get("warm", {}).items():
            s = int(key)
            try:
                st = self._rebuild_warm_state(s, w, data, featurizer)
            except Exception as e:
                st = None
                self.events.record(
                    "model-downgrade",
                    f"objective {s}: warm-posterior rebuild failed, will refit "
                    f"({type(e).__name__}: {e})",
                )
            if st is not None:
                self._warm_state[s] = st
            else:
                self._warm_state.pop(s, None)

    def _rebuild_warm_state(
        self,
        objective: int,
        w: Mapping[str, Any],
        data: TuningData,
        featurizer: Optional[ModelFeaturizer],
    ) -> Optional[Dict[str, Any]]:
        """Reconstruct one objective's warm posterior from checkpoint state.

        The base chunk is refactorized at the checkpointed θ via
        :meth:`LCM.refit_at` (one ``_nll_and_grad`` evaluation — the same
        code path the original fit's winning restart ended on), then each
        subsequent chunk is replayed through :meth:`LCM.extend` exactly as
        the original campaign applied it.  Returns ``None`` when the
        checkpoint holds no usable rows.
        """
        chunks = [list(map(int, c)) for c in w["chunks"]]
        if not chunks or not any(chunks[-1]):
            return None
        tr = _YTransform(str(w["transform"]["kind"]))
        tr.mean = float(w["transform"]["mean"])
        tr.std = float(w["transform"]["std"])
        space = data.tuning_space

        def stack(prev: Sequence[int], cur: Sequence[int]):
            blocks, ys, tix = [], [], []
            for i in range(data.n_tasks):
                if cur[i] <= prev[i]:
                    continue
                cfgs = [data.X[i][k] for k in range(prev[i], cur[i])]
                units = np.vstack([space.normalize(c) for c in cfgs])
                if featurizer is not None:
                    units = featurizer.enrich(
                        data.tasks[i], cfgs, units, observe=False
                    )
                blocks.append(units)
                ys.extend(data.Y[i][k][objective] for k in range(prev[i], cur[i]))
                tix.extend([i] * len(cfgs))
            if not blocks:
                return None, None, None
            return (
                np.vstack(blocks),
                np.asarray(ys, dtype=float),
                np.asarray(tix, dtype=int),
            )

        X0, y0, t0_ = stack([0] * data.n_tasks, chunks[0])
        if X0 is None:
            return None
        model = LCM(
            data.n_tasks,
            X0.shape[1],
            self.options.n_latent or min(data.n_tasks, 3),
            jitter=self.options.jitter,
            n_start=1,
            maxiter=self.options.lbfgs_maxiter,
            seed=0,  # rng unused by refit_at/extend; must not consume a seed-tree child
            chol_ranks=self.options.chol_ranks,
        )
        model.refit_at(X0, tr.transform(y0), t0_, np.asarray(w["theta"], dtype=float))
        for prev, cur in zip(chunks, chunks[1:]):
            Xn, yn, tn = stack(prev, cur)
            if Xn is not None:
                model.extend(Xn, tr.transform(yn), tn)
        return {
            "model": model,
            "transform": tr,
            "counts": list(chunks[-1]),
            "chunks": [list(c) for c in chunks],
        }

    def _fit_surrogate(
        self, data: TuningData, X, yt, tidx, executor, objective: int, fingerprints=None
    ):
        """Fit the selected surrogate backend, degrading gracefully on failure.

        The backend comes from the registry
        (:func:`repro.core.model.select_backend`): ``model_backend="auto"``
        uses the exact LCM until the stacked observation count exceeds
        ``sparse_threshold``, then escalates to the O(N·M²) sparse
        inducing-point backend.  The ladder below the chosen backend is
        unchanged: backend → independent per-task GPs → ``None`` (random
        search); each downgrade emits a ``"model-downgrade"`` event.  With
        ``options.model_fallback`` off, failures propagate as before.

        For θ-carrying backends (exact and sparse LCM — the flat layout is
        shared, so warm starts survive escalation): when a surrogate cache
        holds a fit of the same backend whose data is a subset/superset of
        ours (``fingerprints``), its hyperparameters warm-start a single
        L-BFGS run in place of the cold multi-start.  With
        ``options.refit_warm_start``, the previous MLA iteration's optimum
        (fresher than any cache entry) takes precedence and the start count
        drops to ``options.refit_warm_n_start``.  Every fit emits a
        ``"model-fit"`` event recording the backend and how many
        multi-starts it spent.
        """
        n_latent = self.options.n_latent or min(data.n_tasks, 3)
        backend = select_backend(
            self.options.model_backend, X.shape[0], self.options.sparse_threshold
        )
        spec = get_backend(backend)
        n_inducing = self.options.n_inducing if backend == "sparse-lcm" else 0
        self._note_model_backend(backend, objective, int(X.shape[0]))
        n_start = self.options.n_start
        theta0 = None
        if spec.supports_theta and self.options.refit_warm_start:
            st = self._warm_state.get(objective)
            prev = st["model"] if st is not None else None
            if (
                prev is not None
                and prev.theta is not None
                and prev.params.delta == data.n_tasks
                and prev.params.beta == X.shape[1]
                and prev.params.Q == n_latent
            ):
                theta0 = np.asarray(prev.theta, dtype=float)
                n_start = self.options.refit_warm_n_start
        if (
            spec.supports_theta
            and theta0 is None
            and self.model_cache is not None
            and fingerprints
        ):
            cached = self.model_cache.lookup(
                self.problem.name,
                objective,
                fingerprints,
                n_tasks=data.n_tasks,
                n_dims=X.shape[1],
                n_latent=n_latent,
                backend=backend,
                n_inducing=n_inducing,
            )
            if cached is not None:
                theta0 = np.asarray(cached.theta, dtype=float)
                n_start = 1
                self.events.record(
                    "model-cache-hit",
                    f"objective {objective}: warm start from {cached.key[:12]} "
                    f"({len(cached.fingerprints)} record(s) cached, "
                    f"{len(fingerprints)} current)",
                )
        model = spec.factory(
            data.n_tasks,
            X.shape[1],
            n_latent,
            n_start,
            self._child_seed(),
            executor,
            self.options,
        )
        try:
            model.fit(X, yt, tidx, theta0=theta0)
        except Exception as e:
            if not self.options.model_fallback:
                raise
            reason = f"{type(e).__name__}: {e}"
        else:
            # a "fit" whose every multi-start diverged (NLL stuck at the
            # Cholesky-failure sentinel) is as useless as a crashed one
            ll = getattr(model, "log_likelihood_", 0.0)
            if np.isfinite(ll) and ll > -1e24:
                self.events.record(
                    "model-fit",
                    f"objective {objective}: backend={backend} n_starts={n_start} "
                    f"n={X.shape[0]} warm={theta0 is not None}",
                    backend=backend,
                    n_starts=n_start,
                    n=int(X.shape[0]),
                )
                if (
                    spec.supports_theta
                    and model.theta is not None
                    and self.model_cache is not None
                    and fingerprints
                ):
                    from ..service.modelcache import CachedFit

                    key = self.model_cache.put(
                        CachedFit(
                            self.problem.name,
                            objective,
                            data.n_tasks,
                            X.shape[1],
                            n_latent,
                            model.theta,
                            ll,
                            fingerprints,
                            backend=backend,
                            n_inducing=n_inducing,
                        )
                    )
                    self.events.record(
                        "model-cache-store", f"objective {objective}: {key[:12]}"
                    )
                return model
            if not self.options.model_fallback:
                raise RuntimeError(
                    f"{backend} fit diverged and model_fallback is disabled"
                )
            reason = "all multi-starts diverged"
        self.events.record(
            "model-downgrade",
            f"objective {objective}: {backend} -> per-task gp ({reason})",
        )
        try:
            gps: List[Optional[GaussianProcess]] = []
            for i in range(data.n_tasks):
                rows = tidx == i
                if not np.any(rows):
                    gps.append(None)
                    continue
                # the degradation ladder warm-starts the same way the LCM
                # does: last iteration's per-task optimum, reduced starts
                gp_theta0 = None
                gp_starts = self.options.n_start
                if self.options.refit_warm_start:
                    prev_gp = self._warm_gp_theta.get((objective, i))
                    if prev_gp is not None and prev_gp.shape == (X.shape[1] + 2,):
                        gp_theta0 = prev_gp
                        gp_starts = self.options.refit_warm_n_start
                gp = GaussianProcess(
                    jitter=self.options.jitter,
                    n_start=gp_starts,
                    maxiter=self.options.lbfgs_maxiter,
                    seed=self._child_seed(),
                )
                gp.fit(X[rows], yt[rows], theta0=gp_theta0)
                self._warm_gp_theta[(objective, i)] = np.asarray(gp.theta)
                gps.append(gp)
            return IndependentGPs(gps)
        except Exception as e:
            self.events.record(
                "model-downgrade",
                f"objective {objective}: per-task gp -> random search "
                f"({type(e).__name__}: {e})",
            )
            return None

    def _predict_unit(
        self,
        lcm: LCM,
        task: int,
        task_dict: Mapping[str, Any],
        featurizer: Optional[ModelFeaturizer],
    ):
        """Posterior over raw normalized candidates (adds model features)."""
        space = self.problem.tuning_space

        def predict(Xunit: np.ndarray):
            Xunit = np.atleast_2d(Xunit)
            if featurizer is not None:
                cfgs = [space.denormalize(u) for u in Xunit]
                Xin = featurizer.enrich(task_dict, cfgs, Xunit, observe=False)
            else:
                Xin = Xunit
            return lcm.predict(task, Xin)

        return predict

    def _iteration_single(
        self, data: TuningData, stats, active: Optional[Sequence[int]] = None
    ) -> List[LCM]:
        featurizer = ModelFeaturizer(self.problem.models) if self.problem.has_models else None
        models, _, ybests = self._fit_models(data, stats, featurizer)
        lcm = models[0]
        if lcm is None:  # fully degraded: random search keeps the budget moving
            self._evaluate_batch(
                data,
                self._random_proposals(data, active, self.options.batch_evals, stats),
                stats,
            )
            return models

        active_list = list(active) if active is not None else list(range(data.n_tasks))
        mode = self._select_search_mode([lcm], featurizer)
        t0 = time.perf_counter()
        with maybe_span("phase.search", algo="pso-ei", mode=mode):
            self._note_search_mode(mode, "pso-ei", len(active_list))
            if mode == "batched":
                proposals = self._search_single_batched(data, lcm, ybests[0], active_list)
            elif mode == "executor":
                proposals = self._search_single_executor(
                    data, lcm, featurizer, ybests[0], active_list
                )
            else:
                proposals = self._search_single_sequential(
                    data, lcm, featurizer, ybests[0], active_list
                )
        stats["search_time"] += time.perf_counter() - t0

        self._evaluate_batch(data, proposals, stats)
        return models

    def _search_single_sequential(
        self,
        data: TuningData,
        lcm,
        featurizer: Optional[ModelFeaturizer],
        ybest: np.ndarray,
        active: Sequence[int],
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Reference search loop: one PSO/EI maximization per task."""
        space = data.tuning_space
        rng = np.random.default_rng(self._child_seed())
        q = self.options.batch_evals
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for i in active:
            acq = EIAcquisition(
                self._predict_unit(lcm, i, data.tasks[i], featurizer),
                y_best=float(ybest[i]),
                feasibility=_feasibility_or_none(self.problem, data.tasks[i]),
            )
            pso = ParticleSwarm(
                dim=space.dimension,
                n_particles=self.options.ei_candidates,
                iterations=self.options.pso_iters,
                seed=self._child_seed(),
            )
            seeds = space.normalize(data.best(i)[0])[None, :]
            xunit, _ = pso.maximize(acq, x0=seeds)
            units = pso.top_batch(q) if q > 1 else xunit[None, :]
            for u in units:
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    def _search_single_batched(
        self, data: TuningData, lcm: LCM, ybest: np.ndarray, active: Sequence[int]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Lockstep search: every task's swarm advances on one batched EI.

        All active tasks' particles live in a single
        ``(n_tasks, particles, dim)`` tensor; each PSO step costs one
        cross-task posterior call (:meth:`LCM.predict_tasks`) instead of
        ``n_tasks`` per-task predicts.
        """
        space = data.tuning_space
        feas = [_feasibility_or_none(self.problem, data.tasks[i]) for i in active]
        acq = BatchedEIAcquisition(
            lambda X: lcm.predict_tasks(active, X),
            y_best=np.asarray([ybest[i] for i in active], dtype=float),
            feasibility=feas if any(f is not None for f in feas) else None,
        )
        pso = BatchedParticleSwarm(
            dim=space.dimension,
            n_tasks=len(active),
            n_particles=self.options.ei_candidates,
            iterations=self.options.pso_iters,
            seed=self._child_seed(),
        )
        seeds = np.stack([space.normalize(data.best(i)[0]) for i in active])
        xunit, _ = pso.maximize(acq, x0=seeds)
        rng = np.random.default_rng(self._child_seed())
        q = self.options.batch_evals
        tops = pso.top_batch(q) if q > 1 else None
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for t, i in enumerate(active):
            units = tops[t] if tops is not None else xunit[t][None, :]
            for u in units:
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    def _search_single_executor(
        self,
        data: TuningData,
        lcm,
        featurizer: Optional[ModelFeaturizer],
        ybest: np.ndarray,
        active: Sequence[int],
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Dispatch whole per-task searches across the search executor."""
        space = data.tuning_space
        jobs = [
            _SearchSingleTask(
                self.problem,
                lcm,
                i,
                data.tasks[i],
                float(ybest[i]),
                featurizer,
                n_particles=self.options.ei_candidates,
                iterations=self.options.pso_iters,
                q=self.options.batch_evals,
                seed=self._child_seed(),
                x0=space.normalize(data.best(i)[0])[None, :],
            )
            for i in active
        ]
        executor = self._get_search_executor()
        if executor is None:
            units_per_task = [job() for job in jobs]
        else:
            units_per_task = executor.map(_run_search_job, jobs)
        rng = np.random.default_rng(self._child_seed())
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for i, units in zip(active, units_per_task):
            for u in np.atleast_2d(units):
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    def _random_proposals(
        self, data: TuningData, active: Optional[Sequence[int]], per_task: int, stats
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Random-search proposals — the last rung of the degradation ladder."""
        t0 = time.perf_counter()
        rng = np.random.default_rng(self._child_seed())
        active_list = list(active) if active is not None else list(range(data.n_tasks))
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        with maybe_span("phase.search", algo="random", mode="random"):
            self._note_search_mode("random", "random", len(active_list))
            for i in active_list:
                for cand in sample_feasible(
                    data.tuning_space, per_task, rng, extra=data.tasks[i]
                ):
                    proposals.append((i, self._dedup(data, i, cand, rng)))
        stats["search_time"] += time.perf_counter() - t0
        return proposals

    def _evaluate_batch(self, data: TuningData, proposals, stats) -> None:
        """Evaluate proposals, concurrently when an executor is configured.

        The black-box calls run through the executor (Sec. 4.2 concurrent
        evaluations); recording (data/history/stats) stays sequential and
        deterministic in proposal order.
        """
        executor = self._get_executor()
        if executor is None or len(proposals) <= 1:
            for i, cfg in proposals:
                self._evaluate(data, i, cfg, stats)
            return
        with maybe_span("phase.evaluation", n=len(proposals), concurrent=True):
            outcomes = executor.map(
                _BatchEval(self.problem, [data.tasks[i] for i, _ in proposals], self._retry),
                list(enumerate(cfg for _, cfg in proposals)),
            )
        for (i, cfg), outcome in zip(proposals, outcomes):
            self._record(data, i, cfg, outcome, stats)

    def _dedup(
        self,
        data: TuningData,
        task: int,
        cfg: Dict[str, Any],
        rng: np.random.Generator,
        extra: Optional[set] = None,
    ) -> Dict[str, Any]:
        """Replace an already-evaluated proposal with a fresh feasible point.

        ``rng`` is hoisted by the caller — one generator per search phase
        threaded through every proposal, rather than spawning a fresh
        ``default_rng`` (and a seed-tree child) per duplicate hit.  ``extra``
        adds keys to avoid beyond the evaluated set — the async driver
        passes the task's in-flight keys so a config is never submitted
        twice even before its first evaluation lands.
        """
        seen = self._seen_keys(data, task)
        if extra:
            seen = seen | set(extra)
        key = tuple(np.round(data.tuning_space.normalize(cfg), 9))
        if key not in seen:
            return cfg
        for cand in sample_feasible(
            data.tuning_space, 64, rng, extra=data.tasks[task], max_tries=50_000
        ):
            k = tuple(np.round(data.tuning_space.normalize(cand), 9))
            if k not in seen:
                return cand
        return cfg  # tiny discrete space fully explored; re-evaluate

    # -- multi-objective iteration (Algorithm 2) ----------------------------------
    def _iteration_multi(
        self, data: TuningData, stats, active: Optional[Sequence[int]] = None
    ) -> List[LCM]:
        featurizer = ModelFeaturizer(self.problem.models) if self.problem.has_models else None
        models, _, _ = self._fit_models(data, stats, featurizer)
        gamma = data.n_objectives
        k = self.options.pareto_batch
        if any(m is None for m in models):  # fully degraded on some objective
            for i, cfg in self._random_proposals(data, active, k, stats):
                self._evaluate(data, i, cfg, stats)
            return models

        active_list = list(active) if active is not None else list(range(data.n_tasks))
        mode = self._select_search_mode(models, featurizer)
        t0 = time.perf_counter()
        with maybe_span("phase.search", algo="nsga2", mode=mode):
            self._note_search_mode(mode, "nsga2", len(active_list))
            if mode == "batched":
                proposals = self._search_multi_batched(data, models, active_list, gamma, k)
            elif mode == "executor":
                proposals = self._search_multi_executor(
                    data, models, featurizer, active_list, gamma, k
                )
            else:
                proposals = self._search_multi(data, models, featurizer, active_list, gamma, k)
        stats["search_time"] += time.perf_counter() - t0

        for i, cfg in proposals:
            self._evaluate(data, i, cfg, stats)
        return models

    def _pareto_seeds(self, data: TuningData, task: int) -> np.ndarray:
        """Normalized NSGA-II seed individuals: current front or incumbent."""
        return data.tuning_space.normalize_many(
            data.pareto_front(task)[0] or [data.best(task)[0]]
        )

    def _search_multi(
        self,
        data: TuningData,
        models: List[LCM],
        featurizer: Optional[ModelFeaturizer],
        active: Sequence[int],
        gamma: int,
        k: int,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """NSGA-II Pareto search, one task at a time (Algorithm 2 body)."""
        space = data.tuning_space
        rng = np.random.default_rng(self._child_seed())
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for i in active:
            predicts = [
                self._predict_unit(models[s], i, data.tasks[i], featurizer) for s in range(gamma)
            ]
            feasible = _feasibility_or_none(self.problem, data.tasks[i])
            nsga = NSGA2(
                dim=space.dimension,
                pop_size=self.options.nsga_pop,
                generations=self.options.nsga_gens,
                seed=self._child_seed(),
                label=f"task {i}",
            )
            Xf, Ff = nsga.minimize(
                lambda X, pr=predicts, fe=feasible: _mo_lcb(pr, fe, X),
                x0=self._pareto_seeds(data, i),
            )
            for u in self._pick_k(Xf, Ff, k, pool=nsga.population):
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    def _search_multi_batched(
        self,
        data: TuningData,
        models: List[LCM],
        active: Sequence[int],
        gamma: int,
        k: int,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Lockstep NSGA-II: all tasks' populations stacked per generation.

        Each generation evaluates one ``(n_tasks, pop, dim)`` tensor with
        ``gamma`` cross-task posterior calls (one per objective) instead of
        ``n_tasks × gamma`` per-task predicts, using the stepping
        (:meth:`NSGA2.initialize` / :meth:`ask` / :meth:`tell`) API.
        """
        space = data.tuning_space
        feas = [_feasibility_or_none(self.problem, data.tasks[i]) for i in active]
        nsgas = [
            NSGA2(
                dim=space.dimension,
                pop_size=self.options.nsga_pop,
                generations=self.options.nsga_gens,
                seed=self._child_seed(),
                label=f"task {i}",
            )
            for i in active
        ]

        def eval_stacked(X: np.ndarray) -> np.ndarray:
            cols = []
            for s in range(gamma):
                mu, var = models[s].predict_tasks(active, X)
                cols.append(mu - 1.0 * np.sqrt(var))
            F = np.stack(cols, axis=-1)  # (n_tasks, pop, gamma)
            for t, fe in enumerate(feas):
                if fe is not None:
                    F[t][~np.asarray(fe(X[t]), dtype=bool)] = np.inf
            return F

        pops = np.stack(
            [nsga.initialize(x0=self._pareto_seeds(data, i)) for nsga, i in zip(nsgas, active)]
        )
        F = eval_stacked(pops)
        for t, nsga in enumerate(nsgas):
            nsga.tell(F[t])
        for _ in range(nsgas[0].generations):
            children = np.stack([nsga.ask() for nsga in nsgas])
            Fc = eval_stacked(children)
            for t, nsga in enumerate(nsgas):
                nsga.tell(Fc[t])

        rng = np.random.default_rng(self._child_seed())
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for t, i in enumerate(active):
            Xf, Ff = nsgas[t].front()
            for u in self._pick_k(Xf, Ff, k, pool=nsgas[t].population):
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    def _search_multi_executor(
        self,
        data: TuningData,
        models: List[LCM],
        featurizer: Optional[ModelFeaturizer],
        active: Sequence[int],
        gamma: int,
        k: int,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Dispatch whole per-task NSGA-II searches across the executor."""
        space = data.tuning_space
        jobs = [
            _SearchMultiTask(
                self.problem,
                models,
                i,
                data.tasks[i],
                featurizer,
                pop_size=self.options.nsga_pop,
                generations=self.options.nsga_gens,
                seed=self._child_seed(),
                x0=self._pareto_seeds(data, i),
            )
            for i in active
        ]
        executor = self._get_search_executor()
        if executor is None:
            results = [job() for job in jobs]
        else:
            results = executor.map(_run_search_job, jobs)
        rng = np.random.default_rng(self._child_seed())
        proposals: List[Tuple[int, Dict[str, Any]]] = []
        for i, (Xf, Ff, popX, popF) in zip(active, results):
            for u in self._pick_k(Xf, Ff, k, pool=(popX, popF)):
                proposals.append((i, self._dedup(data, i, space.denormalize(u), rng)))
        return proposals

    @staticmethod
    def _pick_k(
        Xf: np.ndarray,
        Ff: np.ndarray,
        k: int,
        pool: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Choose k spread-out finite points from a front by crowding distance.

        Non-finite objective rows (infeasible candidates scored ``inf``)
        are filtered *before* the size check, so a front padded with
        infeasible rows can no longer slip through the early exit and yield
        unusable (or fewer than ``k``) picks.  When the finite front is
        short and the optimizer's final population is supplied as
        ``pool=(X, F)``, the remainder is topped up from the next
        non-dominated ranks in (rank, crowding distance) order.
        """
        Xf = np.atleast_2d(np.asarray(Xf, dtype=float))
        Ff = np.atleast_2d(np.asarray(Ff, dtype=float))
        finite = np.all(np.isfinite(Ff), axis=1)
        Xg, Fg = Xf[finite], Ff[finite]
        if Xg.shape[0] > k:
            cd = crowding_distance(Fg)
            order = np.argsort(-cd, kind="stable")
            return Xg[order[:k]]
        picked = [x for x in Xg]
        seen = {tuple(np.round(x, 12)) for x in picked}
        if len(picked) < k and pool is not None:
            poolX = np.atleast_2d(np.asarray(pool[0], dtype=float))
            poolF = np.atleast_2d(np.asarray(pool[1], dtype=float))
            ok = np.all(np.isfinite(poolF), axis=1)
            poolX, poolF = poolX[ok], poolF[ok]
            if poolX.shape[0]:
                for idx in fast_non_dominated_sort(poolF):
                    cd = crowding_distance(poolF[idx])
                    for j in idx[np.argsort(-cd, kind="stable")]:
                        key = tuple(np.round(poolX[j], 12))
                        if key in seen:
                            continue
                        picked.append(poolX[j])
                        seen.add(key)
                        if len(picked) >= k:
                            break
                    if len(picked) >= k:
                        break
        if not picked:
            # nothing feasible anywhere: return the raw front so the
            # campaign keeps proposing (and learning) instead of stalling
            return Xf[:k]
        return np.vstack(picked)[:k]
