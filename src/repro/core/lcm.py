"""Linear Coregionalization Model — the multitask GP at the heart of MLA.

Implements Sec. 3.1 (modeling phase) of the paper.  With ``δ`` tasks and
``Q ≤ δ`` independent latent GPs ``u_q`` (ARD Gaussian kernels ``k_q``,
Eq. 3), the model of task ``i`` is ``f(t_i, x) = Σ_q a_{i,q} u_q(x)``
(Eq. 1), giving the joint covariance over all stacked samples (Eq. 4):

.. math::

    \\Sigma(x_{i,j}, x_{i',j'}) = \\sum_{q=1}^{Q}
        (a_{i,q} a_{i',q} + b_{i,q}\\,\\delta_{i,i'})\\, k_q(x_{i,j}, x_{i',j'})
        + d_i\\,\\delta_{i,i'}\\delta_{j,j'}

Hyperparameters — per-latent ARD lengthscales ``l_j^q``, task loadings
``a_{i,q}``, task-specific kernel weights ``b_{i,q} ≥ 0`` and diagonal noise
``d_i > 0`` (``σ_q`` fixed at 1) — are found by maximizing the log marginal
likelihood with multi-start L-BFGS and *analytic* gradients, matching the
reference implementation.  The multi-start loop can be distributed over an
executor (Sec. 4.3, level-1 parallelism).

The likelihood/gradient evaluation is the dominant tuner cost (Sec. 4.3
devotes the whole parallel-modeling design to it), so it runs through a
vectorized fast path:

* all ``Q`` latent kernels come out of one BLAS contraction
  (:func:`~repro.core.kernels.gaussian_kernel_batch`),
* lengthscale gradients are a single matrix contraction of ``M∘A_q∘K_q``
  against the cached squared-difference tensor — the ``(β, N, N)``
  per-dimension gradient stack of :func:`gaussian_kernel_with_grad` is never
  materialized,
* ``Σ⁻¹`` comes from LAPACK ``potri`` on the existing Cholesky factor
  instead of an explicit ``cho_solve(L, eye(N))`` triangular solve sweep,
* large scratch arrays live in a per-thread workspace reused across L-BFGS
  iterations, and
* :meth:`fit` reuses the Cholesky factor and ``α`` captured during the
  winning restart's final likelihood evaluation instead of re-assembling Σ
  and refactorizing.

The original loop-based implementation is retained verbatim as
:meth:`LCM._nll_and_grad_reference`; the benchmark harness
(``benchmarks/bench_lcm_hotpath.py``) pins the fast path against it.

For cheap cross-iteration updates, :meth:`extend` appends new observations
to a fitted posterior with an ``O(N²·n_new)`` block Cholesky update (no
hyperparameter re-optimization), and :meth:`predict` caches the per-task
cross-kernel weight vectors so an acquisition search's thousands of calls
stop re-unpacking θ.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as sla
from scipy import optimize

from .kernels import (
    gaussian_kernel,
    gaussian_kernel_batch,
    gaussian_kernel_with_grad,
    pairwise_sq_diffs,
)
from ..observability.spans import maybe_span

__all__ = ["LCMParams", "LCM"]

#: NLL sentinel returned when the covariance is not positive definite.
_DIVERGED = 1e25


class LCMParams:
    """Structured view of the flat hyperparameter vector.

    Layout of ``theta`` (all optimizer variables are unconstrained):

    * ``theta[0 : Q*β]``             — ``log l_j^q`` (latent-major),
    * ``theta[Q*β : Q*β + δ*Q]``     — ``a_{i,q}`` (task-major),
    * ``theta[… : … + δ*Q]``         — ``log b_{i,q}``,
    * ``theta[-δ:]``                 — ``log d_i``.
    """

    def __init__(self, n_tasks: int, n_dims: int, n_latent: int):
        self.delta, self.beta, self.Q = int(n_tasks), int(n_dims), int(n_latent)

    @property
    def size(self) -> int:
        """Total number of scalar hyperparameters."""
        return self.Q * self.beta + 2 * self.delta * self.Q + self.delta

    def unpack(self, theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split ``theta`` into ``(lengthscales (Q,β), a (δ,Q), b (δ,Q), d (δ,))``."""
        q, b, d = self.Q, self.beta, self.delta
        i0 = q * b
        ls = np.exp(theta[:i0]).reshape(q, b)
        a = theta[i0 : i0 + d * q].reshape(d, q)
        bw = np.exp(theta[i0 + d * q : i0 + 2 * d * q]).reshape(d, q)
        dn = np.exp(theta[i0 + 2 * d * q :])
        return ls, a, bw, dn

    def pack(self, ls: np.ndarray, a: np.ndarray, bw: np.ndarray, dn: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`unpack` (takes natural-scale values)."""
        return np.concatenate(
            [np.log(ls).ravel(), a.ravel(), np.log(bw).ravel(), np.log(dn).ravel()]
        )

    def pack_grad(
        self, g_ls: np.ndarray, g_a: np.ndarray, g_b: np.ndarray, g_d: np.ndarray
    ) -> np.ndarray:
        """Pack gradient blocks into the flat layout (mirrors :meth:`pack`)."""
        return np.concatenate([g_ls.ravel(), g_a.ravel(), g_b.ravel(), g_d.ravel()])


class _Workspace:
    """Preallocated scratch for the vectorized likelihood, one per (Q, N).

    The L-BFGS optimizer evaluates the likelihood hundreds of times on
    identically-shaped data; allocating the ``(Q, N, N)`` intermediates fresh
    each call dominates small-N evaluations.  One workspace per thread keeps
    executor-mapped restarts race-free.
    """

    def __init__(self, Q: int, N: int):
        self.key = (Q, N)
        self.Kall = np.empty((Q, N, N))  # latent kernels, then M∘K_q
        self.Aall = np.empty((Q, N, N))  # task-coupling factors, then M∘A_q∘K_q
        self.Sigma = np.empty((N, N))  # Σ, then M = αα^T − Σ⁻¹
        self.tmp = np.empty((N, N))


class LCM:
    """Multitask GP surrogate with LCM covariance.

    Parameters
    ----------
    n_tasks:
        δ — number of tasks sharing the model.
    n_dims:
        β — dimension of the (normalized, possibly model-enriched) inputs.
    n_latent:
        Q — number of latent GPs; defaults to ``min(δ, 3)``.
    jitter:
        Diagonal regularization added before Cholesky factorization.
    n_start:
        Random restarts of the likelihood optimization; the best wins.
    maxiter:
        Per-restart L-BFGS-B iteration cap.
    seed:
        Seed for restart initialization.
    executor:
        Optional object with ``map(fn, iterable) -> list``; when given, the
        restarts run through it (thread/process/simulated-MPI parallelism).
    restart_offset:
        First restart index; restart 0 uses a deterministic heuristic
        initialization, higher indices draw random ones.  Distributed-memory
        deployments give each rank a distinct offset so their single local
        restarts differ (Sec. 4.3 level-1 parallelism).
    chol_ranks:
        When set (> 1), the fitted posterior's covariance factorization runs
        through the simulated distributed Cholesky
        (:func:`~repro.runtime.distributed_linalg.distributed_cholesky`,
        Sec. 4.3's ScaLAPACK level) on this many virtual MPI ranks.  The
        factor is numerically identical to the serial one; the simulated
        parallel wall time of the last factorization is exposed as
        ``chol_makespan_``.

    Attributes
    ----------
    jitter_used_:
        The diagonal jitter actually present in the fitted factorization —
        equals ``jitter`` unless Cholesky breakdown forced an escalation
        (each escalation retries from the *base* diagonal with a 10× larger
        jitter, so the final factorization uses exactly this known value).
    """

    def __init__(
        self,
        n_tasks: int,
        n_dims: int,
        n_latent: Optional[int] = None,
        jitter: float = 1e-8,
        n_start: int = 3,
        maxiter: int = 200,
        seed: Optional[int] = None,
        executor=None,
        restart_offset: int = 0,
        chol_ranks: Optional[int] = None,
    ):
        if n_tasks < 1 or n_dims < 1:
            raise ValueError("need n_tasks >= 1 and n_dims >= 1")
        if chol_ranks is not None and int(chol_ranks) < 1:
            raise ValueError("need chol_ranks >= 1")
        Q = min(n_tasks, 3) if n_latent is None else int(n_latent)
        if Q < 1 or Q > n_tasks:
            raise ValueError(f"need 1 <= Q <= δ, got Q={Q}, δ={n_tasks}")
        self.params = LCMParams(n_tasks, n_dims, Q)
        self.jitter = float(jitter)
        self.n_start = int(n_start)
        self.maxiter = int(maxiter)
        self.rng = np.random.default_rng(seed)
        self.executor = executor
        self.restart_offset = max(0, int(restart_offset))
        # fitted state
        self.X: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self.task_index: Optional[np.ndarray] = None
        self.theta: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self.log_likelihood_: float = -np.inf
        self.jitter_used_: float = float(jitter)
        self.chol_ranks = None if chol_ranks is None else int(chol_ranks)
        self.chol_makespan_: float = 0.0
        # caches (never pickled; rebuilt on demand)
        self._tls = threading.local()
        self._same_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._pred_cache: dict = {}
        self._batch_cache: dict = {}

    def __getstate__(self):
        # Executors hold process-local pools (locks, pipes) that cannot cross
        # a pickle boundary; a worker-side copy runs its restarts inline.
        # Scratch workspaces and caches are droppable and thread-local.
        state = self.__dict__.copy()
        state["executor"] = None
        state["_tls"] = None
        state["_same_cache"] = None
        state["_pred_cache"] = {}
        state["_batch_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._tls = threading.local()
        # checkpoints written by older versions predate the batch cache
        # and the distributed-Cholesky wiring
        self.__dict__.setdefault("_batch_cache", {})
        self.__dict__.setdefault("chol_ranks", None)
        self.__dict__.setdefault("chol_makespan_", 0.0)

    # -- covariance assembly ------------------------------------------------
    def _covariance(
        self, theta: np.ndarray, sqd: np.ndarray, tidx: np.ndarray
    ) -> Tuple[np.ndarray, list, list]:
        """Return ``(Σ, [K_q], [A_q])`` for the stacked samples."""
        ls, a, bw, dn = self.params.unpack(theta)
        same = tidx[:, None] == tidx[None, :]
        Sigma = np.diag(dn[tidx]).astype(float)
        Ks, As = [], []
        for q in range(self.params.Q):
            Kq = gaussian_kernel(sqd, ls[q])
            aq = a[tidx, q]
            Aq = np.outer(aq, aq) + np.where(same, bw[tidx, q][:, None], 0.0)
            Sigma += Aq * Kq
            Ks.append(Kq)
            As.append(Aq)
        return Sigma, Ks, As

    def _cov_block(
        self,
        theta: np.ndarray,
        sqd: np.ndarray,
        tidx_rows: np.ndarray,
        tidx_cols: np.ndarray,
    ) -> np.ndarray:
        """Noise-free LCM covariance between two stacked sample sets.

        Used by :meth:`extend` for the cross/new blocks of the block-append
        Cholesky update; the per-sample noise ``d_i`` (which applies to the
        exact diagonal only) is added by the caller where appropriate.
        """
        ls, a, bw, _ = self.params.unpack(theta)
        same = tidx_rows[:, None] == tidx_cols[None, :]
        Kall = gaussian_kernel_batch(sqd, ls)
        out = np.zeros(same.shape)
        for q in range(self.params.Q):
            Aq = np.outer(a[tidx_rows, q], a[tidx_cols, q])
            Aq += np.where(same, bw[tidx_rows, q][:, None], 0.0)
            out += Aq * Kall[q]
        return out

    # -- likelihood ----------------------------------------------------------
    def _workspace(self, N: int) -> _Workspace:
        ws = getattr(self._tls, "ws", None)
        if ws is None or ws.key != (self.params.Q, N):
            ws = _Workspace(self.params.Q, N)
            self._tls.ws = ws
        return ws

    def _same_mask(self, tidx: np.ndarray) -> np.ndarray:
        # One fit passes the identical tidx object to every likelihood call;
        # holding the reference keeps the identity check sound.
        cached = self._same_cache
        if cached is not None and cached[0] is tidx:
            return cached[1]
        same = tidx[:, None] == tidx[None, :]
        self._same_cache = (tidx, same)
        return same

    def _nll_and_grad(
        self,
        theta: np.ndarray,
        sqd: np.ndarray,
        y: np.ndarray,
        tidx: np.ndarray,
        capture: Optional[dict] = None,
    ) -> Tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its gradient in ``theta``.

        Vectorized hot path — see the module docstring for the design.  When
        ``capture`` is a dict, the successful evaluation's ``(θ, L, α, nll)``
        are stored in it so :meth:`fit` can adopt the winning restart's final
        factorization without re-assembling Σ.
        """
        p = self.params
        N = y.shape[0]
        ws = self._workspace(N)
        ls, a, bw, dn = p.unpack(theta)
        same = self._same_mask(tidx)

        Kall = gaussian_kernel_batch(sqd, ls, out=ws.Kall)  # (Q, N, N)
        at = a[tidx]  # (N, Q)
        bt = bw[tidx]  # (N, Q)
        Aall = ws.Aall
        Sigma = ws.Sigma
        tmp = ws.tmp
        for q in range(p.Q):
            np.outer(at[:, q], at[:, q], out=Aall[q])
            np.multiply(same, bt[:, q][:, None], out=tmp)
            Aall[q] += tmp
        np.multiply(Aall[0], Kall[0], out=Sigma)
        for q in range(1, p.Q):
            np.multiply(Aall[q], Kall[q], out=tmp)
            Sigma += tmp
        di = np.diag_indices(N)
        Sigma[di] += dn[tidx] + self.jitter

        try:
            L = sla.cholesky(Sigma, lower=True, check_finite=False)
        except sla.LinAlgError:
            return _DIVERGED, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), y, check_finite=False)
        nll = 0.5 * float(y @ alpha) + float(np.log(np.diag(L)).sum()) + 0.5 * N * np.log(2 * np.pi)
        if capture is not None:
            capture.update(theta=np.array(theta, copy=True), L=L, alpha=alpha, nll=nll)

        # Σ⁻¹ from the Cholesky factor via LAPACK potri (half the flops of
        # the cho_solve(L, eye(N)) sweep, and no N×N identity).
        potri, = sla.get_lapack_funcs(("potri",), (L,))
        Sinv, info = potri(L, lower=1)
        if info != 0:  # pragma: no cover - potri failing after a good potrf
            Sinv = sla.cho_solve((L, True), np.eye(N), check_finite=False)
        else:
            iu = np.triu_indices(N, 1)
            Sinv[iu] = Sinv.T[iu]
        M = np.outer(alpha, alpha, out=ws.Sigma)  # Σ content no longer needed
        M -= Sinv  # dLL/dθ = 0.5 tr(M ∂Σ/∂θ)

        # GK[q] = M∘K_q (in place on Kall); W[q] = M∘A_q∘K_q (in place on Aall)
        GK = Kall
        GK *= M[None, :, :]
        W = Aall
        W *= GK

        # lengthscale gradients: one contraction of W against the cached
        # squared-diff tensor replaces the (β, N, N) per-dimension stack
        g_ls = np.matmul(W.reshape(p.Q, N * N), sqd.reshape(N * N, p.beta))
        g_ls *= 0.5 / (ls * ls)

        # task-loading gradients: g_a[i,q] = Σ_{n∈i} (GK[q] @ a[tidx,·q])_n
        tm = np.einsum("qnm,mq->nq", GK, at)
        g_a = np.zeros((p.delta, p.Q))
        np.add.at(g_a, tidx, tm)

        # b gradients: per-task block sums of GK[q] over same-task pairs
        onehot = np.zeros((p.delta, N))
        onehot[tidx, np.arange(N)] = 1.0
        rs = np.matmul(GK, onehot.T)  # (Q, N, δ)
        sel = rs[:, np.arange(N), tidx]  # (Q, N): Σ_{m∈task(n)} GK[q,n,m]
        g_b = np.zeros((p.delta, p.Q))
        np.add.at(g_b, tidx, 0.5 * sel.T)

        g_d = 0.5 * np.bincount(tidx, weights=M.diagonal(), minlength=p.delta)

        # chain rule to log-parameters for ls, b, d; negate for NLL
        grad = -self.params.pack_grad(g_ls, g_a, g_b * bw, g_d * dn)
        return nll, grad

    def _nll_and_grad_reference(
        self, theta: np.ndarray, sqd: np.ndarray, y: np.ndarray, tidx: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loop-based reference likelihood (the pre-vectorization code).

        Retained verbatim so tests and ``benchmarks/bench_lcm_hotpath.py``
        can pin the fast path's numerics against it; not used by :meth:`fit`.
        """
        p = self.params
        N = y.shape[0]
        ls, a, bw, dn = p.unpack(theta)
        same = tidx[:, None] == tidx[None, :]
        Sigma = np.diag(dn[tidx]).astype(float)
        Ks, dKs, As = [], [], []
        for q in range(p.Q):
            Kq, dKq = gaussian_kernel_with_grad(sqd, ls[q])
            aq = a[tidx, q]
            Aq = np.outer(aq, aq) + np.where(same, bw[tidx, q][:, None], 0.0)
            Sigma += Aq * Kq
            Ks.append(Kq)
            dKs.append(dKq)
            As.append(Aq)
        Sigma[np.diag_indices(N)] += self.jitter
        try:
            L = sla.cholesky(Sigma, lower=True)
        except sla.LinAlgError:
            return _DIVERGED, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), y)
        nll = 0.5 * float(y @ alpha) + float(np.log(np.diag(L)).sum()) + 0.5 * N * np.log(2 * np.pi)
        Sinv = sla.cho_solve((L, True), np.eye(N))
        M = np.outer(alpha, alpha) - Sinv  # dLL/dθ = 0.5 tr(M ∂Σ/∂θ)

        onehot = np.zeros((p.delta, N))
        onehot[tidx, np.arange(N)] = 1.0

        g_ls = np.empty((p.Q, p.beta))
        g_a = np.empty((p.delta, p.Q))
        g_b = np.empty((p.delta, p.Q))
        for q in range(p.Q):
            Gq = M * Ks[q]
            MA = M * As[q]
            for j in range(p.beta):
                g_ls[q, j] = 0.5 * float(np.sum(MA * dKs[q][j]))
            aq = a[tidx, q]
            g_a[:, q] = onehot @ (Gq @ aq)
            # block sums of Gq over same-task index pairs
            g_b[:, q] = 0.5 * np.einsum("in,nm,im->i", onehot, Gq, onehot)
        g_d = 0.5 * (onehot @ np.diag(M))

        # chain rule to log-parameters for ls, b, d; negate for NLL
        grad = -self.params.pack_grad(g_ls, g_a, g_b * bw, g_d * dn)
        return nll, grad

    # -- restart machinery ---------------------------------------------------
    def _initial_theta(self, y: np.ndarray, restart: int) -> np.ndarray:
        p = self.params
        yvar = max(float(np.var(y)), 1e-10)
        if restart == 0:
            ls = np.full((p.Q, p.beta), 0.3)
            a = np.ones((p.delta, p.Q)) * np.sqrt(yvar / p.Q)
            bw = np.full((p.delta, p.Q), 0.05 * yvar)
            dn = np.full(p.delta, 1e-3 * yvar + 1e-8)
        else:
            ls = np.exp(self.rng.normal(np.log(0.3), 0.7, (p.Q, p.beta)))
            a = self.rng.normal(0.0, np.sqrt(yvar), (p.delta, p.Q))
            bw = np.exp(self.rng.normal(np.log(0.05 * yvar + 1e-10), 1.0, (p.delta, p.Q)))
            dn = np.exp(self.rng.normal(np.log(1e-3 * yvar + 1e-8), 1.0, p.delta))
        return p.pack(ls, a, bw, dn)

    def _optimize_one(self, args):
        """One L-BFGS restart; returns ``(nll, θ, L, α)``.

        ``L`` and ``α`` come from the final successful likelihood evaluation
        at the returned ``θ`` (usually the optimizer's last step; otherwise
        one extra evaluation), so :meth:`fit` can adopt the winner's
        factorization directly.  They are ``None`` when even the final point
        is not factorizable.
        """
        theta0, sqd, y, tidx = args
        cap: dict = {}
        res = optimize.minimize(
            self._nll_and_grad,
            theta0,
            args=(sqd, y, tidx, cap),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.maxiter},
            bounds=self._bounds(theta0.shape[0]),
        )
        x = np.asarray(res.x)
        if cap.get("theta") is None or not np.array_equal(cap["theta"], x):
            cap = {}
            nll, _ = self._nll_and_grad(x, sqd, y, tidx, capture=cap)
        if cap.get("theta") is None:
            return float(res.fun), x, None, None
        return float(cap["nll"]), x, cap["L"], cap["alpha"]

    def _bounds(self, n: int):
        p = self.params
        i0 = p.Q * p.beta
        i1 = i0 + p.delta * p.Q
        bounds = []
        for k in range(n):
            if i0 <= k < i1:  # the unconstrained a_{i,q}
                bounds.append((-1e3, 1e3))
            else:  # log-scale variables
                bounds.append((-20.0, 12.0))
        return bounds

    # -- public API ------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_index: Sequence[int],
        theta0: Optional[np.ndarray] = None,
    ) -> "LCM":
        """Fit the LCM to stacked samples.

        Parameters
        ----------
        X:
            ``(N, β)`` normalized inputs, all tasks concatenated.
        y:
            ``(N,)`` objective values (typically transformed upstream).
        task_index:
            ``(N,)`` integer task id in ``[0, δ)`` per row.
        theta0:
            Optional warm-start hyperparameter vector (e.g. from the
            surrogate-model cache or the previous MLA iteration's fit): it
            replaces the first restart's initialization, so ``n_start=1``
            reduces the multi-start search to one L-BFGS run from a
            known-good optimum.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        tidx = np.asarray(task_index, dtype=int).ravel()
        if not (X.shape[0] == y.shape[0] == tidx.shape[0]):
            raise ValueError("X, y and task_index row counts differ")
        if X.shape[0] == 0:
            raise ValueError("no observations")
        if tidx.min() < 0 or tidx.max() >= self.params.delta:
            raise ValueError("task_index out of range")
        sqd = pairwise_sq_diffs(X)

        if theta0 is not None:
            theta0 = np.asarray(theta0, dtype=float).ravel()
            if theta0.shape != (self.params.size,):
                raise ValueError(
                    f"theta0 has {theta0.shape[0]} entries, expected {self.params.size}"
                )
        starts = [
            theta0 if s == 0 and theta0 is not None
            else self._initial_theta(y, s + self.restart_offset)
            for s in range(self.n_start)
        ]
        jobs = [(t, sqd, y, tidx) for t in starts]
        with maybe_span(
            "model.fit", n=int(X.shape[0]), n_starts=self.n_start, warm=theta0 is not None
        ):
            if self.executor is not None:
                results = list(self.executor.map(self._optimize_one, jobs))
            else:
                results = [self._optimize_one(j) for j in jobs]
        best_nll, best_theta, bestL, best_alpha = min(results, key=lambda r: r[0])

        self.X, self.y, self.task_index, self.theta = X, y, tidx, best_theta
        self.log_likelihood_ = -best_nll
        self._pred_cache = {}
        self._batch_cache = {}
        if bestL is not None and not (self.chol_ranks and self.chol_ranks > 1):
            # the winning restart's final evaluation already factorized Σ
            self._L, self._alpha = bestL, best_alpha
            self.jitter_used_ = self.jitter
        else:
            # with chol_ranks the posterior factorization always goes
            # through the distributed path so its parallel time is metered
            self._refactorize(sqd)
        return self

    def refit_at(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_index: Sequence[int],
        theta: np.ndarray,
    ) -> "LCM":
        """Rebuild the fitted posterior at a known hyperparameter optimum.

        Checkpoint resume uses this to reconstruct an extendable posterior
        from ``(X, y, task_index, θ)`` without re-running L-BFGS.  The
        factorization goes through exactly the code path :meth:`fit` ends
        on — one likelihood evaluation at ``θ`` with factor capture, falling
        back to :meth:`_refactorize` — so given the same inputs the rebuilt
        ``(L, α)`` is bitwise identical to the fit that produced ``θ``,
        which keeps subsequent :meth:`extend` chains bit-identical too.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        tidx = np.asarray(task_index, dtype=int).ravel()
        if not (X.shape[0] == y.shape[0] == tidx.shape[0]):
            raise ValueError("X, y and task_index row counts differ")
        if X.shape[0] == 0:
            raise ValueError("no observations")
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.shape != (self.params.size,):
            raise ValueError(
                f"theta has {theta.shape[0]} entries, expected {self.params.size}"
            )
        sqd = pairwise_sq_diffs(X)
        cap: dict = {}
        nll, _ = self._nll_and_grad(theta, sqd, y, tidx, capture=cap)
        self.X, self.y, self.task_index, self.theta = X, y, tidx, theta
        self.log_likelihood_ = -float(nll)
        self._pred_cache = {}
        self._batch_cache = {}
        if cap.get("theta") is not None and not (self.chol_ranks and self.chol_ranks > 1):
            self._L, self._alpha = cap["L"], cap["alpha"]
            self.jitter_used_ = self.jitter
        else:
            self._refactorize(sqd)
        return self

    def _refactorize(self, sqd: np.ndarray) -> None:
        """Assemble and factorize Σ(θ) with escalating — not compounding — jitter.

        Each retry restores the base diagonal before adding the escalated
        jitter, so the final factorization uses exactly ``jitter_used_``
        rather than the sum of every previous attempt's additions.
        """
        assert self.theta is not None and self.X is not None
        Sigma, _, _ = self._covariance(self.theta, sqd, self.task_index)
        di = np.diag_indices(Sigma.shape[0])
        base = Sigma[di].copy()
        j = self.jitter
        while True:
            Sigma[di] = base + j
            try:
                self._L = self._posterior_chol(Sigma)
                break
            except sla.LinAlgError:
                j = max(j, 1e-10) * 10.0
                if j > 1.0:
                    raise
        self.jitter_used_ = j
        self._alpha = sla.cho_solve((self._L, True), self.y)

    def _posterior_chol(self, Sigma: np.ndarray) -> np.ndarray:
        """Factorize Σ serially, or on the simulated MPI ranks when configured."""
        if self.chol_ranks and self.chol_ranks > 1:
            from ..runtime.distributed_linalg import distributed_cholesky

            L, makespan = distributed_cholesky(Sigma, self.chol_ranks)
            self.chol_makespan_ = float(makespan)
            return L
        return sla.cholesky(Sigma, lower=True)

    def extend(
        self, Xnew: np.ndarray, ynew: np.ndarray, tidx_new: Sequence[int]
    ) -> "LCM":
        """Append observations to the fitted posterior without refitting θ.

        An ``O(N²·n_new)`` block Cholesky update: with the existing factor
        ``L₁₁`` of Σ₁₁, the extended factor is

        .. math::

            L = \\begin{pmatrix} L_{11} & 0 \\\\
                S_{12}^T L_{11}^{-T} & L_{22} \\end{pmatrix},
            \\qquad
            L_{22} L_{22}^T = S_{22} - L_{21} L_{21}^T

        so only the ``n_new × n_new`` trailing block is factorized from
        scratch.  Hyperparameters stay at the last :meth:`fit` optimum — the
        cross-iteration ``refit_interval`` mode of the MLA driver uses this
        to skip intermediate refits entirely.
        """
        if self.theta is None or self.X is None or self._L is None:
            raise RuntimeError("extend() before fit()")
        Xnew = np.atleast_2d(np.asarray(Xnew, dtype=float))
        ynew = np.asarray(ynew, dtype=float).ravel()
        tnew = np.asarray(tidx_new, dtype=int).ravel()
        if not (Xnew.shape[0] == ynew.shape[0] == tnew.shape[0]):
            raise ValueError("Xnew, ynew and tidx_new row counts differ")
        if Xnew.shape[0] == 0:
            return self
        if Xnew.shape[1] != self.X.shape[1]:
            raise ValueError("Xnew dimension differs from fitted inputs")
        if tnew.min() < 0 or tnew.max() >= self.params.delta:
            raise ValueError("task_index out of range")
        with maybe_span(
            "model.extend", n_old=int(self.X.shape[0]), n_new=int(Xnew.shape[0])
        ):
            return self._extend_impl(Xnew, ynew, tnew)

    def _extend_impl(self, Xnew: np.ndarray, ynew: np.ndarray, tnew: np.ndarray) -> "LCM":
        """Validated body of :meth:`extend` (split out for span scoping)."""
        _, _, _, dn = self.params.unpack(self.theta)
        n_old, n_new = self.X.shape[0], Xnew.shape[0]

        S12 = self._cov_block(
            self.theta, pairwise_sq_diffs(self.X, Xnew), self.task_index, tnew
        )
        S22 = self._cov_block(self.theta, pairwise_sq_diffs(Xnew), tnew, tnew)
        di = np.diag_indices(n_new)
        S22[di] += dn[tnew] + self.jitter_used_

        B = sla.solve_triangular(self._L, S12, lower=True)  # (n_old, n_new)
        C = S22 - B.T @ B
        base = C[di].copy()
        j = 0.0
        while True:
            try:
                L22 = sla.cholesky(C, lower=True)
                break
            except sla.LinAlgError:
                j = max(j, self.jitter, 1e-10) * 10.0
                if j > 1.0:
                    raise
                C[di] = base + j

        L = np.zeros((n_old + n_new, n_old + n_new))
        L[:n_old, :n_old] = self._L
        L[n_old:, :n_old] = B.T
        L[n_old:, n_old:] = L22
        self.X = np.vstack([self.X, Xnew])
        self.y = np.concatenate([self.y, ynew])
        self.task_index = np.concatenate([self.task_index, tnew])
        self._L = L
        self._alpha = sla.cho_solve((L, True), self.y)
        N = self.y.shape[0]
        self.log_likelihood_ = -(
            0.5 * float(self.y @ self._alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * N * np.log(2 * np.pi)
        )
        self._pred_cache = {}
        self._batch_cache = {}
        self._same_cache = None
        return self

    def _task_weights(self, task: int) -> Tuple[np.ndarray, np.ndarray, float]:
        """Cached per-(task, θ) prediction constants.

        Returns ``(inv2ls (Q,β), w (Q,N), prior)`` where
        ``w[q,m] = a_{task,q} a_{t_m,q} + b_{task,q} δ_{t_m,task}`` is the
        cross-kernel weight vector of Eq. 5 and ``prior`` the task's prior
        variance.  The PSO/EI inner loop calls :meth:`predict` thousands of
        times per search phase; caching these stops every call re-unpacking
        θ and re-deriving the weights.  Invalidated by :meth:`fit` and
        :meth:`extend`.
        """
        cached = self._pred_cache.get(task)
        if cached is None:
            ls, a, bw, _ = self.params.unpack(self.theta)
            inv2 = 0.5 / (ls * ls)
            w = (a[task][None, :] * a[self.task_index]).T.copy()  # (Q, N)
            w[:, self.task_index == task] += bw[task][:, None]
            prior = float(np.sum(a[task] ** 2 + bw[task]))
            cached = (inv2, w, prior)
            self._pred_cache[task] = cached
        return cached

    def predict(self, task: int, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance for one task at new points (Eqs. 5–6).

        Parameters
        ----------
        task:
            Task id in ``[0, δ)``.
        Xstar:
            ``(N*, β)`` normalized query points.
        """
        if self.theta is None or self.X is None:
            raise RuntimeError("predict() before fit()")
        task = int(task)
        if not 0 <= task < self.params.delta:
            raise ValueError("task out of range")
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        with maybe_span("model.predict", aggregate=True):
            inv2, w, prior = self._task_weights(task)
            ns, n = Xstar.shape[0], self.X.shape[0]
            sqd = pairwise_sq_diffs(Xstar, self.X)
            # all Q cross-kernels in one contraction, then the weighted latent sum
            E = np.matmul(inv2, sqd.reshape(ns * n, self.params.beta).T)
            np.negative(E, out=E)
            np.exp(E, out=E)
            Kstar = np.einsum("qnm,qm->nm", E.reshape(self.params.Q, ns, n), w)
            mu = Kstar @ self._alpha
            v = sla.solve_triangular(self._L, Kstar.T, lower=True)
            var = prior - np.einsum("ij,ij->j", v, v)
        return mu, np.maximum(var, 0.0)

    def predict_tasks(
        self, tasks: Sequence[int], Xstar: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-task batched posterior: many tasks, one kernel evaluation.

        The ARD lengthscales of the Q latent kernels are shared across
        tasks (Eq. 1 couples tasks only through the coregionalization
        weights), so the exponential base-kernel tensor ``exp(-Σ sqd/2ℓ²)``
        is identical for every task and needs computing once per candidate
        block.  This turns the search phase's ``n_tasks × pso_iters`` tiny
        :meth:`predict` calls into a handful of large GEMMs: one
        ``(Q, N*, β)·(β, N)`` batched contraction producing the weighted
        squared distances by expansion (no ``(N*, N, β)`` broadcast
        temporary), one stacked ``einsum`` against the cached per-task
        weights, and a single triangular solve for all tasks' variances.

        Parameters
        ----------
        tasks:
            Task ids to evaluate (any subset, in any order).
        Xstar:
            Either one shared block ``(N*, β)`` scored for every task, or
            per-task candidate blocks ``(n_tasks, N*, β)`` — the layout the
            lockstep swarm optimizers use.

        Returns
        -------
        ``(mu, var)`` — each ``(n_tasks, N*)``, row ``t`` identical (to
        floating-point roundoff) to ``predict(tasks[t], ...)`` on the
        corresponding block.
        """
        if self.theta is None or self.X is None:
            raise RuntimeError("predict_tasks() before fit()")
        task_ids = [int(t) for t in tasks]
        if not task_ids:
            raise ValueError("need at least one task")
        for t in task_ids:
            if not 0 <= t < self.params.delta:
                raise ValueError("task out of range")
        Xs = np.asarray(Xstar, dtype=float)
        if Xs.ndim == 2:
            per_task_blocks = False
        elif Xs.ndim == 3:
            per_task_blocks = True
            if Xs.shape[0] != len(task_ids):
                raise ValueError(
                    f"got {Xs.shape[0]} candidate blocks for {len(task_ids)} task(s)"
                )
        else:
            raise ValueError("Xstar must be (N*, beta) or (n_tasks, N*, beta)")
        T, ns, n = len(task_ids), Xs.shape[-2], self.X.shape[0]
        flat = Xs.reshape(-1, Xs.shape[-1])
        with maybe_span("model.predict_tasks", aggregate=True):
            weights = [self._task_weights(t) for t in task_ids]
            inv2 = weights[0][0]
            beta = self.params.beta
            cached = self._batch_cache.get(tuple(task_ids))
            if cached is None:
                W = np.stack([w for _, w, _ in weights])  # (T, Q, N)
                prior = np.array([p for _, _, p in weights])  # (T,)
                # centering shrinks the squared terms of the expansion below,
                # cutting its cancellation error by the same factor
                center = self.X.mean(axis=0)
                Xc = self.X - center
                # right operand of the augmented distance GEMM (see below):
                # [Xcᵀ; 1; Xc²·w_q] per latent
                Baug = np.empty((self.params.Q, beta + 2, n))
                Baug[:, :beta, :] = Xc.T
                Baug[:, beta, :] = 1.0
                Baug[:, beta + 1, :] = ((Xc * Xc) @ inv2.T).T
                self._batch_cache[tuple(task_ids)] = (W, prior, center, Baug)
            else:
                W, prior, center, Baug = cached
            # Weighted squared distances by expansion instead of the
            # (m, n, beta) broadcast temporary:  -Σ_b w_b (x_b - X_b)^2 =
            # 2 (x∘w)·Xᵀ - x²·w - X²·w  (on centered coordinates).
            # Augmenting the operands with the two rank-1 terms
            # ([2 x∘w, -x²·w, -1] x [Xᵀ; 1; X²·w]) folds the whole thing into
            # one (Q, N*, β+2)x(β+2, N) batched GEMM plus a single exp pass;
            # the cancellation error is O(eps), far below the 1e-10 agreement
            # predict() is held to (exp of a +O(eps) argument is harmless).
            m = flat.shape[0]
            flatc = flat - center
            A = np.empty((self.params.Q, m, beta + 2))
            np.multiply(flatc, (2.0 * inv2)[:, None, :], out=A[:, :, :beta])
            A[:, :, beta] = -((flatc * flatc) @ inv2.T).T
            A[:, :, beta + 1] = -1.0
            E = np.matmul(A, Baug)  # (Q, m, n)
            np.exp(E, out=E)
            if per_task_blocks:
                Kstar = np.einsum(
                    "qtsm,tqm->tsm", E.reshape(self.params.Q, T, ns, n), W
                )
            else:
                Kstar = np.einsum(
                    "qsm,tqm->tsm", E.reshape(self.params.Q, ns, n), W
                )
            mu = Kstar @ self._alpha  # (T, ns)
            # One triangular solve for every task's variance — dtrtrs is the
            # routine solve_triangular wraps, minus the per-call wrapper
            # overhead, so results stay bit-identical to predict()'s solve.
            v, info = sla.lapack.dtrtrs(
                self._L, Kstar.reshape(T * ns, n).T, lower=1
            )
            if info != 0:
                raise np.linalg.LinAlgError(f"triangular solve failed (info={info})")
            var = prior[:, None] - np.einsum("ij,ij->j", v, v).reshape(T, ns)
        return mu, np.maximum(var, 0.0)

    def task_correlation(self) -> np.ndarray:
        """Fitted between-task correlation matrix ``B / sqrt(diag ⊗ diag)``.

        ``B = A A^T + diag(Σ_q b)`` is the coregionalization matrix summed over
        latents; its normalized form shows how much knowledge the model shares
        between tasks (a diagnostic the multitask-learning literature uses).
        """
        if self.theta is None:
            raise RuntimeError("not fitted")
        _, a, bw, _ = self.params.unpack(self.theta)
        B = a @ a.T + np.diag(bw.sum(axis=1))
        dd = np.sqrt(np.clip(np.diag(B), 1e-300, None))
        return B / np.outer(dd, dd)
