"""Linear Coregionalization Model — the multitask GP at the heart of MLA.

Implements Sec. 3.1 (modeling phase) of the paper.  With ``δ`` tasks and
``Q ≤ δ`` independent latent GPs ``u_q`` (ARD Gaussian kernels ``k_q``,
Eq. 3), the model of task ``i`` is ``f(t_i, x) = Σ_q a_{i,q} u_q(x)``
(Eq. 1), giving the joint covariance over all stacked samples (Eq. 4):

.. math::

    \\Sigma(x_{i,j}, x_{i',j'}) = \\sum_{q=1}^{Q}
        (a_{i,q} a_{i',q} + b_{i,q}\\,\\delta_{i,i'})\\, k_q(x_{i,j}, x_{i',j'})
        + d_i\\,\\delta_{i,i'}\\delta_{j,j'}

Hyperparameters — per-latent ARD lengthscales ``l_j^q``, task loadings
``a_{i,q}``, task-specific kernel weights ``b_{i,q} ≥ 0`` and diagonal noise
``d_i > 0`` (``σ_q`` fixed at 1) — are found by maximizing the log marginal
likelihood with multi-start L-BFGS and *analytic* gradients, matching the
reference implementation.  The multi-start loop can be distributed over an
executor (Sec. 4.3, level-1 parallelism).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as sla
from scipy import optimize

from .kernels import gaussian_kernel, gaussian_kernel_with_grad, pairwise_sq_diffs

__all__ = ["LCMParams", "LCM"]


class LCMParams:
    """Structured view of the flat hyperparameter vector.

    Layout of ``theta`` (all optimizer variables are unconstrained):

    * ``theta[0 : Q*β]``             — ``log l_j^q`` (latent-major),
    * ``theta[Q*β : Q*β + δ*Q]``     — ``a_{i,q}`` (task-major),
    * ``theta[… : … + δ*Q]``         — ``log b_{i,q}``,
    * ``theta[-δ:]``                 — ``log d_i``.
    """

    def __init__(self, n_tasks: int, n_dims: int, n_latent: int):
        self.delta, self.beta, self.Q = int(n_tasks), int(n_dims), int(n_latent)

    @property
    def size(self) -> int:
        """Total number of scalar hyperparameters."""
        return self.Q * self.beta + 2 * self.delta * self.Q + self.delta

    def unpack(self, theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split ``theta`` into ``(lengthscales (Q,β), a (δ,Q), b (δ,Q), d (δ,))``."""
        q, b, d = self.Q, self.beta, self.delta
        i0 = q * b
        ls = np.exp(theta[:i0]).reshape(q, b)
        a = theta[i0 : i0 + d * q].reshape(d, q)
        bw = np.exp(theta[i0 + d * q : i0 + 2 * d * q]).reshape(d, q)
        dn = np.exp(theta[i0 + 2 * d * q :])
        return ls, a, bw, dn

    def pack(self, ls: np.ndarray, a: np.ndarray, bw: np.ndarray, dn: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`unpack` (takes natural-scale values)."""
        return np.concatenate(
            [np.log(ls).ravel(), a.ravel(), np.log(bw).ravel(), np.log(dn).ravel()]
        )

    def pack_grad(
        self, g_ls: np.ndarray, g_a: np.ndarray, g_b: np.ndarray, g_d: np.ndarray
    ) -> np.ndarray:
        """Pack gradient blocks into the flat layout (mirrors :meth:`pack`)."""
        return np.concatenate([g_ls.ravel(), g_a.ravel(), g_b.ravel(), g_d.ravel()])


class LCM:
    """Multitask GP surrogate with LCM covariance.

    Parameters
    ----------
    n_tasks:
        δ — number of tasks sharing the model.
    n_dims:
        β — dimension of the (normalized, possibly model-enriched) inputs.
    n_latent:
        Q — number of latent GPs; defaults to ``min(δ, 3)``.
    jitter:
        Diagonal regularization added before Cholesky factorization.
    n_start:
        Random restarts of the likelihood optimization; the best wins.
    maxiter:
        Per-restart L-BFGS-B iteration cap.
    seed:
        Seed for restart initialization.
    executor:
        Optional object with ``map(fn, iterable) -> list``; when given, the
        restarts run through it (thread/process/simulated-MPI parallelism).
    restart_offset:
        First restart index; restart 0 uses a deterministic heuristic
        initialization, higher indices draw random ones.  Distributed-memory
        deployments give each rank a distinct offset so their single local
        restarts differ (Sec. 4.3 level-1 parallelism).
    """

    def __init__(
        self,
        n_tasks: int,
        n_dims: int,
        n_latent: Optional[int] = None,
        jitter: float = 1e-8,
        n_start: int = 3,
        maxiter: int = 200,
        seed: Optional[int] = None,
        executor=None,
        restart_offset: int = 0,
    ):
        if n_tasks < 1 or n_dims < 1:
            raise ValueError("need n_tasks >= 1 and n_dims >= 1")
        Q = min(n_tasks, 3) if n_latent is None else int(n_latent)
        if Q < 1 or Q > n_tasks:
            raise ValueError(f"need 1 <= Q <= δ, got Q={Q}, δ={n_tasks}")
        self.params = LCMParams(n_tasks, n_dims, Q)
        self.jitter = float(jitter)
        self.n_start = int(n_start)
        self.maxiter = int(maxiter)
        self.rng = np.random.default_rng(seed)
        self.executor = executor
        self.restart_offset = max(0, int(restart_offset))
        # fitted state
        self.X: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self.task_index: Optional[np.ndarray] = None
        self.theta: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self.log_likelihood_: float = -np.inf

    def __getstate__(self):
        # Executors hold process-local pools (locks, pipes) that cannot cross
        # a pickle boundary; a worker-side copy runs its restarts inline.
        state = self.__dict__.copy()
        state["executor"] = None
        return state

    # -- covariance assembly ------------------------------------------------
    def _covariance(
        self, theta: np.ndarray, sqd: np.ndarray, tidx: np.ndarray
    ) -> Tuple[np.ndarray, list, list]:
        """Return ``(Σ, [K_q], [A_q])`` for the stacked samples."""
        ls, a, bw, dn = self.params.unpack(theta)
        same = tidx[:, None] == tidx[None, :]
        Sigma = np.diag(dn[tidx]).astype(float)
        Ks, As = [], []
        for q in range(self.params.Q):
            Kq = gaussian_kernel(sqd, ls[q])
            aq = a[tidx, q]
            Aq = np.outer(aq, aq) + np.where(same, bw[tidx, q][:, None], 0.0)
            Sigma += Aq * Kq
            Ks.append(Kq)
            As.append(Aq)
        return Sigma, Ks, As

    def _nll_and_grad(
        self, theta: np.ndarray, sqd: np.ndarray, y: np.ndarray, tidx: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its gradient in ``theta``."""
        p = self.params
        N = y.shape[0]
        ls, a, bw, dn = p.unpack(theta)
        same = tidx[:, None] == tidx[None, :]
        Sigma = np.diag(dn[tidx]).astype(float)
        Ks, dKs, As = [], [], []
        for q in range(p.Q):
            Kq, dKq = gaussian_kernel_with_grad(sqd, ls[q])
            aq = a[tidx, q]
            Aq = np.outer(aq, aq) + np.where(same, bw[tidx, q][:, None], 0.0)
            Sigma += Aq * Kq
            Ks.append(Kq)
            dKs.append(dKq)
            As.append(Aq)
        Sigma[np.diag_indices(N)] += self.jitter
        try:
            L = sla.cholesky(Sigma, lower=True)
        except sla.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), y)
        nll = 0.5 * float(y @ alpha) + float(np.log(np.diag(L)).sum()) + 0.5 * N * np.log(2 * np.pi)
        Sinv = sla.cho_solve((L, True), np.eye(N))
        M = np.outer(alpha, alpha) - Sinv  # dLL/dθ = 0.5 tr(M ∂Σ/∂θ)

        onehot = np.zeros((p.delta, N))
        onehot[tidx, np.arange(N)] = 1.0

        g_ls = np.empty((p.Q, p.beta))
        g_a = np.empty((p.delta, p.Q))
        g_b = np.empty((p.delta, p.Q))
        for q in range(p.Q):
            Gq = M * Ks[q]
            MA = M * As[q]
            for j in range(p.beta):
                g_ls[q, j] = 0.5 * float(np.sum(MA * dKs[q][j]))
            aq = a[tidx, q]
            g_a[:, q] = onehot @ (Gq @ aq)
            # block sums of Gq over same-task index pairs
            g_b[:, q] = 0.5 * np.einsum("in,nm,im->i", onehot, Gq, onehot)
        g_d = 0.5 * (onehot @ np.diag(M))

        # chain rule to log-parameters for ls, b, d; negate for NLL
        grad = -self.params.pack_grad(g_ls, g_a, g_b * bw, g_d * dn)
        return nll, grad

    # -- restart machinery ---------------------------------------------------
    def _initial_theta(self, y: np.ndarray, restart: int) -> np.ndarray:
        p = self.params
        yvar = max(float(np.var(y)), 1e-10)
        if restart == 0:
            ls = np.full((p.Q, p.beta), 0.3)
            a = np.ones((p.delta, p.Q)) * np.sqrt(yvar / p.Q)
            bw = np.full((p.delta, p.Q), 0.05 * yvar)
            dn = np.full(p.delta, 1e-3 * yvar + 1e-8)
        else:
            ls = np.exp(self.rng.normal(np.log(0.3), 0.7, (p.Q, p.beta)))
            a = self.rng.normal(0.0, np.sqrt(yvar), (p.delta, p.Q))
            bw = np.exp(self.rng.normal(np.log(0.05 * yvar + 1e-10), 1.0, (p.delta, p.Q)))
            dn = np.exp(self.rng.normal(np.log(1e-3 * yvar + 1e-8), 1.0, p.delta))
        return p.pack(ls, a, bw, dn)

    def _optimize_one(self, args) -> Tuple[float, np.ndarray]:
        theta0, sqd, y, tidx = args
        res = optimize.minimize(
            self._nll_and_grad,
            theta0,
            args=(sqd, y, tidx),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.maxiter},
            bounds=self._bounds(theta0.shape[0]),
        )
        return float(res.fun), np.asarray(res.x)

    def _bounds(self, n: int):
        p = self.params
        i0 = p.Q * p.beta
        i1 = i0 + p.delta * p.Q
        bounds = []
        for k in range(n):
            if i0 <= k < i1:  # the unconstrained a_{i,q}
                bounds.append((-1e3, 1e3))
            else:  # log-scale variables
                bounds.append((-20.0, 12.0))
        return bounds

    # -- public API ------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_index: Sequence[int],
        theta0: Optional[np.ndarray] = None,
    ) -> "LCM":
        """Fit the LCM to stacked samples.

        Parameters
        ----------
        X:
            ``(N, β)`` normalized inputs, all tasks concatenated.
        y:
            ``(N,)`` objective values (typically transformed upstream).
        task_index:
            ``(N,)`` integer task id in ``[0, δ)`` per row.
        theta0:
            Optional warm-start hyperparameter vector (e.g. from the
            surrogate-model cache): it replaces the first restart's
            initialization, so ``n_start=1`` reduces the multi-start search
            to one L-BFGS run from a known-good optimum.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        tidx = np.asarray(task_index, dtype=int).ravel()
        if not (X.shape[0] == y.shape[0] == tidx.shape[0]):
            raise ValueError("X, y and task_index row counts differ")
        if X.shape[0] == 0:
            raise ValueError("no observations")
        if tidx.min() < 0 or tidx.max() >= self.params.delta:
            raise ValueError("task_index out of range")
        sqd = pairwise_sq_diffs(X)

        if theta0 is not None:
            theta0 = np.asarray(theta0, dtype=float).ravel()
            if theta0.shape != (self.params.size,):
                raise ValueError(
                    f"theta0 has {theta0.shape[0]} entries, expected {self.params.size}"
                )
        starts = [
            theta0 if s == 0 and theta0 is not None
            else self._initial_theta(y, s + self.restart_offset)
            for s in range(self.n_start)
        ]
        jobs = [(t, sqd, y, tidx) for t in starts]
        if self.executor is not None:
            results = list(self.executor.map(self._optimize_one, jobs))
        else:
            results = [self._optimize_one(j) for j in jobs]
        best_nll, best_theta = min(results, key=lambda r: r[0])

        self.X, self.y, self.task_index, self.theta = X, y, tidx, best_theta
        self.log_likelihood_ = -best_nll
        Sigma, _, _ = self._covariance(best_theta, sqd, tidx)
        Sigma[np.diag_indices(X.shape[0])] += self.jitter
        j = self.jitter
        while True:
            try:
                self._L = sla.cholesky(Sigma, lower=True)
                break
            except sla.LinAlgError:
                j = max(j, 1e-10) * 10
                Sigma[np.diag_indices(X.shape[0])] += j
                if j > 1.0:
                    raise
        self._alpha = sla.cho_solve((self._L, True), y)
        return self

    def predict(self, task: int, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance for one task at new points (Eqs. 5–6).

        Parameters
        ----------
        task:
            Task id in ``[0, δ)``.
        Xstar:
            ``(N*, β)`` normalized query points.
        """
        if self.theta is None or self.X is None:
            raise RuntimeError("predict() before fit()")
        task = int(task)
        if not 0 <= task < self.params.delta:
            raise ValueError("task out of range")
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        ls, a, bw, dn = self.params.unpack(self.theta)
        tidx = self.task_index
        sqd = pairwise_sq_diffs(Xstar, self.X)
        Kstar = np.zeros((Xstar.shape[0], self.X.shape[0]))
        prior = 0.0
        for q in range(self.params.Q):
            Kq = gaussian_kernel(sqd, ls[q])
            w = a[task, q] * a[tidx, q] + np.where(tidx == task, bw[task, q], 0.0)
            Kstar += Kq * w[None, :]
            prior += a[task, q] ** 2 + bw[task, q]
        mu = Kstar @ self._alpha
        v = sla.solve_triangular(self._L, Kstar.T, lower=True)
        var = prior - np.einsum("ij,ij->j", v, v)
        return mu, np.maximum(var, 0.0)

    def task_correlation(self) -> np.ndarray:
        """Fitted between-task correlation matrix ``B / sqrt(diag ⊗ diag)``.

        ``B = A A^T + diag(Σ_q b)`` is the coregionalization matrix summed over
        latents; its normalized form shows how much knowledge the model shares
        between tasks (a diagnostic the multitask-learning literature uses).
        """
        if self.theta is None:
            raise RuntimeError("not fitted")
        _, a, bw, _ = self.params.unpack(self.theta)
        B = a @ a.T + np.diag(bw.sum(axis=1))
        dd = np.sqrt(np.clip(np.diag(B), 1e-300, None))
        return B / np.outer(dd, dd)
