"""Initial-design samplers for the sampling phase of MLA.

The sampling phase of Algorithm 1 draws ``ε = ε_tot / 2`` initial tuning
parameter configurations per task.  The reference GPTune implementation uses
Latin hypercube sampling with multi-dimensional uniformity (the ``lhsmdu``
package); here we implement maximin Latin hypercube sampling from scratch,
plus plain uniform random sampling, both made *constraint aware* by rejection
with resampling.

All samplers operate in the normalized unit hypercube and return native-valued
configuration dictionaries via the space's ``denormalize``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from .space import Space

__all__ = ["lhs_unit", "LHSSampler", "RandomSampler", "sample_feasible"]


def lhs_unit(n: int, dim: int, rng: np.random.Generator, iterations: int = 10) -> np.ndarray:
    """Maximin Latin hypercube design of ``n`` points in ``[0, 1]^dim``.

    Starting from a random LHS (one stratum per point and dimension, jittered
    within strata), a few random coordinate-permutation restarts are scored by
    the minimum pairwise distance and the best design kept.  This mirrors the
    multi-dimensional-uniformity goal of ``lhsmdu`` at a fraction of the cost.

    Parameters
    ----------
    n:
        Number of points (>= 1).
    dim:
        Dimensionality (>= 1).
    rng:
        NumPy random generator.
    iterations:
        Number of random designs scored; the maximin winner is returned.
    """
    if n < 1 or dim < 1:
        raise ValueError("need n >= 1 and dim >= 1")

    def one_design() -> np.ndarray:
        pts = np.empty((n, dim))
        for j in range(dim):
            perm = rng.permutation(n)
            pts[:, j] = (perm + rng.random(n)) / n
        return pts

    if n == 1:
        return rng.random((1, dim))
    best, best_score = None, -np.inf
    for _ in range(max(1, iterations)):
        pts = one_design()
        diff = pts[:, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        np.fill_diagonal(d2, np.inf)
        score = float(d2.min())
        if score > best_score:
            best, best_score = pts, score
    assert best is not None
    return best


class LHSSampler:
    """Constraint-aware maximin Latin hypercube sampler over a :class:`Space`.

    Feasibility is enforced by rejection: infeasible points of the design are
    replaced with uniform feasible draws, preserving design size.
    """

    def __init__(self, space: Space, seed: Optional[int] = None):
        self.space = space
        self.rng = np.random.default_rng(seed)

    def sample(self, n: int, extra: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        """Draw ``n`` feasible native configurations.

        ``extra`` supplies task-parameter bindings visible to constraints.
        """
        unit = lhs_unit(n, self.space.dimension, self.rng)
        out: List[Dict[str, Any]] = []
        for u in unit:
            cfg = self.space.denormalize(u)
            if self.space.is_feasible(cfg, extra=extra):
                out.append(cfg)
        need = n - len(out)
        if need > 0:
            out.extend(sample_feasible(self.space, need, self.rng, extra=extra))
        return out


class RandomSampler:
    """Uniform random constraint-aware sampler over a :class:`Space`."""

    def __init__(self, space: Space, seed: Optional[int] = None):
        self.space = space
        self.rng = np.random.default_rng(seed)

    def sample(self, n: int, extra: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        """Draw ``n`` feasible native configurations uniformly at random."""
        return sample_feasible(self.space, n, self.rng, extra=extra)


def sample_feasible(
    space: Space,
    n: int,
    rng: np.random.Generator,
    extra: Optional[Mapping[str, Any]] = None,
    max_tries: int = 10_000,
) -> List[Dict[str, Any]]:
    """Rejection-sample ``n`` feasible configurations from ``space``.

    Raises
    ------
    RuntimeError
        If fewer than ``n`` feasible points are found within
        ``max_tries`` draws (the feasible region is too small or empty).
    """
    out: List[Dict[str, Any]] = []
    tries = 0
    while len(out) < n:
        if tries >= max_tries:
            raise RuntimeError(
                f"could not find {n} feasible points in {max_tries} draws; "
                "check the constraints"
            )
        tries += 1
        cfg = space.denormalize(rng.random(space.dimension))
        if space.is_feasible(cfg, extra=extra):
            out.append(cfg)
    return out
