"""Parameter spaces and constraints.

A :class:`Space` bundles an ordered list of :class:`~repro.core.params.Parameter`
objects with a set of feasibility constraints.  GPTune uses three such spaces
(Table 1 of the paper):

* ``IS`` — the task parameter input space (dimension α),
* ``PS`` — the tuning parameter space (dimension β),
* ``OS`` — the output space (dimension γ; for outputs the "parameters" are
  just named :class:`~repro.core.params.Real` metrics).

Constraints are predicates over *named* parameter values, e.g. the ScaLAPACK
process-grid constraint ``p_r <= p`` from Sec. 2.  They may be Python
callables accepting keyword arguments, or strings evaluated with the
parameter names in scope.  Constraints may also reference task-parameter
names; :meth:`Space.is_feasible` accepts extra bindings for that purpose.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from .params import Parameter

__all__ = ["Space", "Constraint"]

ConstraintLike = Union[str, Callable[..., bool]]


class Constraint:
    """A feasibility predicate over named parameter values.

    Parameters
    ----------
    expr:
        Either a string such as ``"p_r * p_c <= p"`` — evaluated with the
        parameter bindings as locals and ``numpy`` available as ``np`` — or a
        callable invoked with the bindings as keyword arguments.  Callables
        are inspected for their accepted keywords so that constraints can be
        written over any subset of parameters.
    name:
        Optional label used in error messages.
    """

    def __init__(self, expr: ConstraintLike, name: Optional[str] = None):
        self.expr = expr
        self.name = name or (expr if isinstance(expr, str) else getattr(expr, "__name__", "constraint"))
        if callable(expr):
            import inspect

            sig = inspect.signature(expr)
            has_var_kw = any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
            )
            self._kwargs: Optional[frozenset] = None if has_var_kw else frozenset(sig.parameters)
        else:
            self._kwargs = None

    def __call__(self, bindings: Mapping[str, Any]) -> bool:
        if callable(self.expr):
            if self._kwargs is None:
                return bool(self.expr(**bindings))
            kw = {k: v for k, v in bindings.items() if k in self._kwargs}
            return bool(self.expr(**kw))
        scope = dict(bindings)
        scope["np"] = np
        return bool(eval(self.expr, {"__builtins__": {}}, scope))  # noqa: S307 - sandboxed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint({self.name!r})"


class Space:
    """An ordered collection of parameters with feasibility constraints.

    Parameters
    ----------
    parameters:
        Ordered parameters; their order defines the layout of normalized
        vectors.
    constraints:
        Iterable of :class:`Constraint`, strings, or callables.  A point is
        feasible iff every constraint evaluates truthy.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Iterable[ConstraintLike] = (),
    ):
        params = list(parameters)
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self.parameters: List[Parameter] = params
        self.names: List[str] = names
        self.constraints: List[Constraint] = [
            c if isinstance(c, Constraint) else Constraint(c) for c in constraints
        ]
        self._by_name: Dict[str, Parameter] = {p.name: p for p in params}

    # -- basic container behaviour ----------------------------------------
    @property
    def dimension(self) -> int:
        """Number of parameters (β for the tuning space, α for tasks)."""
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def __getitem__(self, key: Union[int, str]) -> Parameter:
        if isinstance(key, str):
            return self._by_name[key]
        return self.parameters[key]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Space({self.parameters!r}, constraints={[c.name for c in self.constraints]!r})"

    # -- dict <-> vector conversions ---------------------------------------
    def to_dict(self, values: Union[Mapping[str, Any], Sequence[Any]]) -> Dict[str, Any]:
        """Coerce a mapping or positional sequence of native values to a dict."""
        if isinstance(values, Mapping):
            missing = [n for n in self.names if n not in values]
            if missing:
                raise KeyError(f"missing parameters: {missing}")
            return {n: values[n] for n in self.names}
        vals = list(values)
        if len(vals) != len(self.names):
            raise ValueError(f"expected {len(self.names)} values, got {len(vals)}")
        return dict(zip(self.names, vals))

    def to_list(self, values: Union[Mapping[str, Any], Sequence[Any]]) -> List[Any]:
        """Coerce to a positional list ordered like :attr:`parameters`."""
        return [self.to_dict(values)[n] for n in self.names]

    def normalize(self, values: Union[Mapping[str, Any], Sequence[Any]]) -> np.ndarray:
        """Map native values to a point of the unit hypercube."""
        d = self.to_dict(values)
        return np.array([p.normalize(d[p.name]) for p in self.parameters], dtype=float)

    def denormalize(self, unit: Sequence[float]) -> Dict[str, Any]:
        """Map a unit-hypercube point back to native values."""
        u = np.asarray(unit, dtype=float)
        if u.shape != (self.dimension,):
            raise ValueError(f"expected shape ({self.dimension},), got {u.shape}")
        return {p.name: p.denormalize(u[i]) for i, p in enumerate(self.parameters)}

    def normalize_many(self, rows: Iterable[Union[Mapping[str, Any], Sequence[Any]]]) -> np.ndarray:
        """Vectorized :meth:`normalize` over an iterable of points."""
        rows = list(rows)
        out = np.empty((len(rows), self.dimension), dtype=float)
        for i, r in enumerate(rows):
            out[i] = self.normalize(r)
        return out

    def denormalize_many(self, units: np.ndarray) -> List[Dict[str, Any]]:
        """Vectorized :meth:`denormalize`."""
        units = np.atleast_2d(np.asarray(units, dtype=float))
        return [self.denormalize(u) for u in units]

    # -- feasibility --------------------------------------------------------
    def is_feasible(
        self,
        values: Union[Mapping[str, Any], Sequence[Any]],
        extra: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """Check all constraints at a native-valued point.

        ``extra`` supplies additional bindings (typically the task
        parameters) visible to constraints.
        """
        bindings = dict(extra or {})
        bindings.update(self.to_dict(values))
        return all(c(bindings) for c in self.constraints)

    def round_trip(self, values: Union[Mapping[str, Any], Sequence[Any]]) -> Dict[str, Any]:
        """Project native values onto representable ones (normalize∘denormalize).

        Integers are rounded and clipped, categoricals snapped; useful before
        evaluating an externally supplied configuration.
        """
        return self.denormalize(self.normalize(values))

    # -- introspection helpers ----------------------------------------------
    @property
    def categorical_mask(self) -> np.ndarray:
        """Boolean mask of categorical dimensions (used by search operators)."""
        return np.array([p.is_categorical for p in self.parameters], dtype=bool)

    @property
    def cardinalities(self) -> np.ndarray:
        """Per-dimension value counts (``inf`` for reals)."""
        return np.array([p.cardinality for p in self.parameters], dtype=float)

    def grid(self, points_per_dim: int) -> List[Dict[str, Any]]:
        """Full-factorial grid of native configurations (grid-search helper).

        The cross product is capped at one million points to avoid accidental
        explosion; callers wanting more should sample instead.
        """
        axes = [p.grid(points_per_dim) for p in self.parameters]
        total = 1
        for a in axes:
            total *= len(a)
            if total > 1_000_000:
                raise ValueError("grid too large; lower points_per_dim")
        out: List[Dict[str, Any]] = []
        idx = [0] * len(axes)
        while True:
            out.append({p.name: axes[i][idx[i]] for i, p in enumerate(self.parameters)})
            for i in reversed(range(len(axes))):
                idx[i] += 1
                if idx[i] < len(axes[i]):
                    break
                idx[i] = 0
            else:
                break
        return out
