"""Tuner options.

:class:`Options` gathers every knob of the MLA machinery with the defaults
used throughout the paper's experiments.  It is a plain value object with
validation; modules read from it rather than taking long argument lists.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["Options"]


@dataclasses.dataclass
class Options:
    """Configuration for :class:`repro.core.mla.GPTune`.

    Attributes
    ----------
    n_latent:
        Q — number of latent functions in the LCM (Eq. 1).  ``None`` selects
        ``min(δ, 3)`` at model-build time; the paper requires ``Q <= δ``.
    n_start:
        Number of random L-BFGS restarts when maximizing the log-likelihood
        (Sec. 4.3); the best restart wins.
    lbfgs_maxiter:
        Iteration cap per L-BFGS run.
    jitter:
        Diagonal regularization added to the covariance before factorization.
    y_transform:
        ``"standardize"`` (per-objective z-score over all tasks), ``"log"``
        (log then z-score; right for runtimes spanning decades) or ``"none"``.
    ei_candidates:
        Population size of the PSO swarm maximizing Expected Improvement.
    pso_iters:
        PSO generations per search phase.
    nsga_pop, nsga_gens:
        NSGA-II population / generations for multi-objective search.
    pareto_batch:
        k — number of new configurations evaluated per multi-objective
        iteration (Algorithm 2, line 5).
    batch_evals:
        q — single-objective configurations evaluated per task per
        iteration.  q > 1 proposes diverse top EI candidates and runs them
        concurrently through the executor backend (Sec. 4.2: GPTune
        "supports calling multiple function evaluations concurrently").
    initial_fraction:
        Fraction of ``ε_tot`` used for the initial LHS design (paper: 1/2).
    backend:
        Executor backend for the tuner's own parallelism: ``"serial"``,
        ``"thread"`` or ``"process"``.
    n_workers:
        Worker count for the thread/process backends.
    async_eval:
        Run the campaign through the asynchronous evaluation queue
        (:mod:`repro.runtime.async_engine`) instead of the lockstep loop:
        evaluations are submitted as proposals are made (up to
        ``max_inflight`` outstanding), completions stream back as they
        finish, the posterior absorbs each drained batch incrementally
        (``refit_interval`` controls extend-vs-refit as in lockstep), and
        the search proposes continuously against the freshest posterior
        with a ``pending_penalty`` so in-flight configurations are never
        re-proposed.  One straggling evaluation no longer stalls the other
        tasks.  Covers single- and multi-objective campaigns, with or
        without performance models; the one remaining unsupported shape
        (multi-objective *combined with* performance models) raises at
        campaign start unless ``allow_async_fallback=True`` explicitly
        requests the old silent lockstep demotion.  See ``docs/ASYNC.md``
        for the coverage matrix and the ordering/determinism contract.
    max_inflight:
        Cap on concurrently outstanding evaluations in async mode.
        ``None`` → ``max(2, n_workers)``.
    async_refit_secs:
        Minimum seconds between modeling phases in async mode (the
        periodic-refit cadence).  By default the async driver refits or
        extends the posterior before every proposal round; at very high
        completion rates that makes modeling the bottleneck.  With this
        set, drained completions are still absorbed into the dataset
        immediately, but the posterior is only refreshed once the interval
        has elapsed since the last modeling phase (the first fit always
        runs).  Under :class:`~repro.runtime.async_engine.SimScheduler`
        the interval is measured on the virtual clock, so campaigns stay
        deterministic.  Requires ``async_eval=True``.
    allow_async_fallback:
        Escape hatch restoring the pre-hard-error behavior: when
        ``async_eval=True`` meets a campaign shape the streaming loop does
        not support, run lockstep and record an ``"async-fallback"`` event
        instead of raising ``ValueError``.  Requires ``async_eval=True``.
    pending_penalty:
        How async proposals avoid in-flight points: ``"cl"`` (constant
        liar — the posterior copy is extended with incumbent-valued lies at
        pending points; the default), ``"lp"`` (local penalization — EI is
        multiplied by a compactly supported distance factor), or ``"none"``.
        See :mod:`repro.core.search.penalty`.
    penalty_radius:
        Unit-cube radius of the ``"lp"`` penalty (also the fallback when
        the constant-liar extension fails).
    search_batched:
        Run the search phase in *lockstep batched* mode: all active tasks'
        PSO swarms (γ = 1) or NSGA-II populations (γ > 1) advance together
        and each optimizer step scores every task with one cross-task
        posterior call (:meth:`repro.core.lcm.LCM.predict_tasks`) — a
        handful of large GEMMs instead of ``n_tasks × pso_iters`` tiny
        predicts.  Engages only when batching is possible (a healthy LCM
        surrogate and no per-task performance-model enrichment); otherwise
        the driver falls back to ``search_backend``.  Proposals stay
        deterministic for a fixed ``seed`` but differ from the sequential
        reference's (each mode is self-reproducible).
    search_backend:
        Fallback parallelization of the search phase when lockstep batching
        is off or impossible (per-task :class:`ModelFeaturizer` enrichment,
        degraded ``IndependentGPs`` rung): ``"serial"`` runs the reference
        per-task loop; ``"thread"``/``"process"`` dispatch each task's
        whole EI/NSGA-II search as one job across the
        :mod:`repro.runtime.executor` backends (the paper's Sec. 4.2
        parallel search phase), sharing ``n_workers``.  The ``"process"``
        backend requires a picklable problem/featurizer.
    seed:
        Master seed; all randomness (sampling, PSO, NSGA-II, restarts)
        derives from it, making runs reproducible.
    model_restarts_parallel:
        Distribute the ``n_start`` restarts over the executor (Sec. 4.3
        level-1 parallelism).
    max_seconds:
        Optional wall-clock budget for one :meth:`~repro.core.mla.GPTune.tune`
        call; iteration stops once exceeded (the *anytime* usage mode —
        "the best performance so-far when tuning is terminated early",
        Sec. 1).  The evaluation budget ``ε_tot`` still caps the run.
    retry_attempts:
        Attempts per objective evaluation (1 = no retry).  Crashes, NaN/inf
        results and timeouts are retried before the failure penalty applies
        (see :mod:`repro.runtime.resilience`).
    retry_backoff:
        Base delay in seconds before the first retry (0 = immediate).
    retry_backoff_factor:
        Exponential growth factor of the retry delay.
    retry_jitter:
        Fractional deterministic jitter added to each delay (seeded from
        ``seed``, so replayed campaigns sleep the same schedule).
    eval_timeout:
        Per-attempt wall-clock cap in seconds for one objective evaluation;
        a hung objective counts as a retryable ``"timeout"`` failure.
    checkpoint_path:
        When set, a resumable :class:`~repro.runtime.resilience.RunCheckpoint`
        is written (atomically) to this path after the sampling phase and
        after each MLA iteration; a killed campaign continues exactly where
        it stopped via :meth:`~repro.core.mla.GPTune.resume`.
    checkpoint_every:
        Write the checkpoint every k-th iteration (the post-sampling snapshot
        is always written).
    model_backend:
        Surrogate backend for the modeling phase (see
        :mod:`repro.core.model.registry`): ``"auto"`` (the default) uses
        the exact LCM while the stacked observation count is at most
        ``sparse_threshold`` and escalates to the sparse inducing-point
        backend beyond it; ``"exact-lcm"``, ``"sparse-lcm"`` and ``"gp"``
        force one backend.  Validated against the registry at construction.
    sparse_threshold:
        Observation count past which ``model_backend="auto"`` switches from
        the exact O(N³) LCM to the O(N·M²) sparse backend.
    n_inducing:
        M — inducing-set size of the sparse backend (≥ 2).  Fits on
        ``N ≤ M`` observations collapse to the exact subset fit.
    chol_ranks:
        When set (> 1), the exact backend's posterior factorization runs on
        this many simulated MPI ranks via the distributed Cholesky
        (Sec. 4.3's ScaLAPACK level); results are numerically identical,
        and the simulated parallel time is exposed on the model.
    model_cache_path:
        When set, a :class:`~repro.service.modelcache.SurrogateCache` at this
        path is consulted before every modeling phase and fed after it: a
        campaign whose data is a subset/superset of a cached fit warm-starts
        L-BFGS from the cached hyperparameters with a single start instead of
        ``n_start`` cold multi-starts.  Share one path between campaigns (the
        file is lock-guarded) to skip redundant modeling across restarts and
        neighboring crowd-tuning runs.
    model_fallback:
        Degrade gracefully when the LCM fit fails (Cholesky breakdown, all
        multi-starts diverging): fall back to independent per-task GPs, then
        to random search, recording a ``"model-downgrade"`` event per step.
        When False, a failed fit aborts the run as before.
    refit_warm_start:
        Keep each objective's fitted hyperparameters between MLA iterations
        and refit with ``theta0 = θ_prev`` and ``refit_warm_n_start`` starts
        instead of ``n_start`` cold multi-starts.  The likelihood landscape
        barely moves when one batch of points is added, so the previous
        optimum is an excellent initial iterate; the first iteration (and
        any iteration whose model shape changed) still fits cold.  The
        per-task GP degradation ladder warm-starts the same way.
    refit_warm_n_start:
        L-BFGS start count for warm refits (default 1 — a single run from
        the previous optimum).
    refit_interval:
        Full hyperparameter refit every k-th modeling phase; intermediate
        iterations *extend* the fitted posterior with the new observations
        via an O(N²·n_new) block Cholesky update
        (:meth:`repro.core.lcm.LCM.extend`) — no L-BFGS at all, recorded as
        a ``"model-extend"`` event.  1 (default) refits every iteration;
        larger values trade hyperparameter freshness for modeling time.
        Lockstep iterations with performance models attached always refit
        (the per-iteration featurizer re-estimates the enriched inputs
        wholesale); async campaigns keep one persistent featurizer, frozen
        during extend phases, so model-enriched campaigns extend too.
    telemetry:
        Record timestamped phase/model/backoff spans into the campaign log
        while tuning (see :mod:`repro.observability.spans`): the four driver
        phases (sampling, modeling, search, evaluation), every LCM fit /
        extend plus aggregated predict totals, and retry-backoff waits, all
        with wall-clock and monotonic stamps.  Off (the default) costs
        nothing measurable.  The CLI's ``--telemetry out.jsonl`` turns this
        on and streams the log to a JSONL file that ``repro report`` renders
        into the Table-3-style phase breakdown.
    verbose:
        Print per-iteration progress.
    """

    n_latent: Optional[int] = None
    n_start: int = 3
    lbfgs_maxiter: int = 200
    jitter: float = 1e-8
    y_transform: str = "standardize"
    ei_candidates: int = 40
    pso_iters: int = 30
    nsga_pop: int = 40
    nsga_gens: int = 25
    pareto_batch: int = 4
    batch_evals: int = 1
    initial_fraction: float = 0.5
    backend: str = "serial"
    n_workers: int = 2
    async_eval: bool = False
    max_inflight: Optional[int] = None
    async_refit_secs: Optional[float] = None
    allow_async_fallback: bool = False
    pending_penalty: str = "cl"
    penalty_radius: float = 0.15
    search_batched: bool = True
    search_backend: str = "serial"
    seed: Optional[int] = None
    model_restarts_parallel: bool = True
    max_seconds: Optional[float] = None
    retry_attempts: int = 1
    retry_backoff: float = 0.0
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.0
    eval_timeout: Optional[float] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    model_backend: str = "auto"
    sparse_threshold: int = 512
    n_inducing: int = 128
    chol_ranks: Optional[int] = None
    model_cache_path: Optional[str] = None
    model_fallback: bool = True
    refit_warm_start: bool = False
    refit_warm_n_start: int = 1
    refit_interval: int = 1
    telemetry: bool = False
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.n_latent is not None and self.n_latent < 1:
            raise ValueError("n_latent must be >= 1")
        if self.n_start < 1:
            raise ValueError("n_start must be >= 1")
        if self.lbfgs_maxiter < 1:
            raise ValueError("lbfgs_maxiter must be >= 1")
        if self.ei_candidates < 1:
            raise ValueError("ei_candidates must be >= 1")
        if self.pso_iters < 1:
            raise ValueError("pso_iters must be >= 1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.model_backend != "auto":
            from .model.registry import available_backends

            if self.model_backend not in available_backends():
                known = ", ".join(("auto",) + available_backends())
                raise ValueError(
                    f"unknown model_backend {self.model_backend!r}; known: {known}"
                )
        if self.sparse_threshold < 1:
            raise ValueError("sparse_threshold must be >= 1")
        if self.n_inducing < 2:
            raise ValueError("n_inducing must be >= 2")
        if self.chol_ranks is not None and self.chol_ranks < 1:
            raise ValueError("chol_ranks must be >= 1")
        if not 0.0 < self.initial_fraction < 1.0:
            raise ValueError("initial_fraction must be in (0, 1)")
        if self.y_transform not in ("standardize", "log", "none"):
            raise ValueError(f"unknown y_transform {self.y_transform!r}")
        if self.backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.async_refit_secs is not None:
            if self.async_refit_secs <= 0:
                raise ValueError("async_refit_secs must be positive")
            if not self.async_eval:
                raise ValueError("async_refit_secs requires async_eval=True")
        if self.allow_async_fallback and not self.async_eval:
            raise ValueError("allow_async_fallback requires async_eval=True")
        if self.pending_penalty not in ("cl", "lp", "none"):
            raise ValueError(f"unknown pending_penalty {self.pending_penalty!r}")
        if self.penalty_radius <= 0:
            raise ValueError("penalty_radius must be positive")
        if self.search_backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown search_backend {self.search_backend!r}")
        if self.pareto_batch < 1:
            raise ValueError("pareto_batch must be >= 1")
        if self.batch_evals < 1:
            raise ValueError("batch_evals must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.retry_backoff_factor < 1:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be >= 0")
        if self.eval_timeout is not None and self.eval_timeout <= 0:
            raise ValueError("eval_timeout must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.refit_warm_n_start < 1:
            raise ValueError("refit_warm_n_start must be >= 1")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")

    def replace(self, **kw) -> "Options":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **kw)
