"""Surrogate-quality diagnostics: leave-one-out cross-validation.

GPTune users need to know whether the LCM can be trusted before spending
the remaining budget on its suggestions.  Exact GP leave-one-out residuals
come almost free from the fitted factorization (Sundararajan & Keerthi
2001): with ``K⁻¹`` the inverse covariance, α = K⁻¹y,

```
μ_{-n} − y_n = −α_n / K⁻¹[n,n]         (LOO residual)
σ²_{-n}      = 1 / K⁻¹[n,n]            (LOO predictive variance)
```

so no model is ever refitted.  :func:`loo_diagnostics` reports the usual
summaries — RMSE, standardized residuals, and the log predictive density —
for a fitted :class:`~repro.core.lcm.LCM`, overall and per task.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import linalg as sla

from .lcm import LCM

__all__ = ["loo_residuals", "loo_diagnostics"]


def loo_residuals(lcm: LCM) -> Dict[str, np.ndarray]:
    """Exact leave-one-out residuals/variances of a fitted LCM.

    Returns
    -------
    dict with ``"residual"`` (μ_{-n} − y_n), ``"variance"`` (σ²_{-n}) and
    ``"standardized"`` (residual / σ_{-n}), all length-N arrays in the
    model's (transformed) output units.
    """
    if lcm.theta is None or lcm._L is None:
        raise RuntimeError("LCM is not fitted")
    N = lcm.X.shape[0]
    Kinv = sla.cho_solve((lcm._L, True), np.eye(N))
    diag = np.clip(np.diag(Kinv), 1e-300, None)
    alpha = lcm._alpha
    residual = -alpha / diag
    variance = 1.0 / diag
    return {
        "residual": residual,
        "variance": variance,
        "standardized": residual / np.sqrt(variance),
    }


def loo_diagnostics(lcm: LCM) -> Dict[str, float]:
    """Summary statistics of the LOO residuals.

    Returns
    -------
    dict with

    * ``rmse`` — root-mean-square LOO error,
    * ``mean_std_resid`` / ``std_std_resid`` — moments of the standardized
      residuals (≈ 0 / ≈ 1 for a well-calibrated model),
    * ``log_predictive`` — Σ log N(y_n | μ_{-n}, σ²_{-n}), the LOO
      pseudo-likelihood (larger is better),
    * per-task RMSE under keys ``rmse_task_<i>``.
    """
    r = loo_residuals(lcm)
    res, var, std = r["residual"], r["variance"], r["standardized"]
    out: Dict[str, float] = {
        "rmse": float(np.sqrt(np.mean(res**2))),
        "mean_std_resid": float(np.mean(std)),
        "std_std_resid": float(np.std(std)),
        "log_predictive": float(
            -0.5 * np.sum(np.log(2 * np.pi * var) + res**2 / var)
        ),
    }
    for i in range(lcm.params.delta):
        mask = lcm.task_index == i
        if mask.any():
            out[f"rmse_task_{i}"] = float(np.sqrt(np.mean(res[mask] ** 2)))
    return out
