"""Incorporation of coarse performance models (Sec. 3.3).

A *performance model* is an analytical formula ``ỹ(t, x)`` for some feature
of the objective (time, flops, message counts, communication volume).  GPTune
folds such models into the LCM by **feature enrichment**: instead of building
the kernel over the β-dimensional point ``x``, it is built over the
(β + γ̃)-dimensional point ``[x, ỹ_1(t,x), …, ỹ_γ̃(t,x)]``.  The LCM matrix
keeps its ``εδ × εδ`` size; only the inputs gain columns.

Models may carry their own hyperparameters (e.g. the machine coefficients
``t_flop, t_msg, t_vol`` of Eq. 7).  Those are re-estimated from the samples
collected so far, in a *model-update phase* inserted before each modeling
phase (the paper notes a bad fixed estimate is worse than no model at all).
:class:`LinearPerformanceModel` implements the common case where the model is
linear in its hyperparameters — Eq. 7 exactly — fitted by non-negative least
squares.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional, Sequence

import numpy as np
from scipy import optimize

__all__ = ["PerformanceModel", "CallableModel", "LinearPerformanceModel", "ModelFeaturizer"]


class PerformanceModel:
    """Interface for a coarse performance model with optional hyperparameters."""

    def predict(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
        """Evaluate ``ỹ(t, x)``."""
        raise NotImplementedError

    def update(
        self,
        tasks: Sequence[Mapping[str, Any]],
        configs: Sequence[Mapping[str, Any]],
        y: np.ndarray,
    ) -> None:
        """Refit internal hyperparameters from observed ``(t, x, y)`` samples.

        Default: nothing to fit.
        """

    def state_token(self) -> Optional[Any]:
        """Hashable token identifying the current hyperparameter state.

        Cached per-sample predictions made under one token stay valid as
        long as the token is unchanged; ``None`` (the default) means the
        model cannot vouch for its own statelessness, so callers must
        recompute predictions every phase.  Models whose :meth:`update` is
        a no-op should return a constant.
        """
        return None

    def get_state(self) -> Optional[Any]:
        """JSON-serializable hyperparameter state, or ``None`` if stateless."""
        return None

    def set_state(self, state: Any) -> None:
        """Restore hyperparameters written by :meth:`get_state`."""


class CallableModel(PerformanceModel):
    """Adapter wrapping a plain function ``(task, config) -> float``."""

    def __init__(self, fn: Callable[[Mapping[str, Any], Mapping[str, Any]], float]):
        self.fn = fn

    def predict(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
        return float(self.fn(task, config))

    def state_token(self) -> Optional[Any]:
        return ()  # no hyperparameters; predictions never go stale


class LinearPerformanceModel(PerformanceModel):
    """Model linear in unknown machine coefficients (Eq. 7).

    ``ỹ(t, x) = Σ_k c_k · φ_k(t, x)`` where the features φ are known counts
    (e.g. ``C_flop, C_msg, C_vol`` from Eqs. 8–10) and the coefficients c are
    fitted to observed objective values by non-negative least squares each
    model-update phase.

    Parameters
    ----------
    features:
        Callables ``(task, config) -> float`` computing each count φ_k.
    initial_coefficients:
        Starting guess for the c_k (used before any data arrives).
    """

    def __init__(
        self,
        features: Sequence[Callable[[Mapping[str, Any], Mapping[str, Any]], float]],
        initial_coefficients: Optional[Sequence[float]] = None,
    ):
        self.features = list(features)
        if not self.features:
            raise ValueError("need at least one feature")
        if initial_coefficients is None:
            self.coefficients = np.full(len(self.features), 1.0)
        else:
            self.coefficients = np.asarray(initial_coefficients, dtype=float)
            if self.coefficients.shape != (len(self.features),):
                raise ValueError("coefficient/feature length mismatch")
        self.n_updates = 0

    def _phi(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> np.ndarray:
        return np.array([f(task, config) for f in self.features], dtype=float)

    def predict(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
        return float(self._phi(task, config) @ self.coefficients)

    def update(
        self,
        tasks: Sequence[Mapping[str, Any]],
        configs: Sequence[Mapping[str, Any]],
        y: np.ndarray,
    ) -> None:
        """Refit coefficients by NNLS on the accumulated samples."""
        y = np.asarray(y, dtype=float).ravel()
        if y.size < len(self.features):
            return  # underdetermined; keep current estimate
        Phi = np.vstack([self._phi(t, x) for t, x in zip(tasks, configs)])
        # scale columns for conditioning, then solve the non-negative LS
        scale = np.maximum(np.abs(Phi).max(axis=0), 1e-300)
        coef, _ = optimize.nnls(Phi / scale, y)
        self.coefficients = coef / scale
        self.n_updates += 1

    def state_token(self) -> Optional[Any]:
        # the coefficients alone: an update that converged to the same
        # values leaves cached predictions valid
        return (self.coefficients.tobytes(),)

    def get_state(self) -> Optional[Any]:
        return {
            "coefficients": [float(c) for c in self.coefficients],
            "n_updates": int(self.n_updates),
        }

    def set_state(self, state: Any) -> None:
        coef = np.asarray(state["coefficients"], dtype=float)
        if coef.shape != (len(self.features),):
            raise ValueError("coefficient/feature length mismatch in state")
        self.coefficients = coef
        self.n_updates = int(state["n_updates"])


class ModelFeaturizer:
    """Builds model-enriched normalized inputs for the LCM.

    Appends each model's prediction — rescaled to roughly ``[0, 1]`` using
    running min/max over everything seen so far — as extra kernel features
    (Sec. 3.3).  The same instance must transform both the training samples
    and the acquisition candidates so the feature scaling stays consistent
    within one modeling/search iteration.
    """

    def __init__(self, models: Sequence[Any]):
        self.models: List[PerformanceModel] = [
            m if isinstance(m, PerformanceModel) else CallableModel(m) for m in models
        ]
        self._lo = np.full(len(self.models), np.inf)
        self._hi = np.full(len(self.models), -np.inf)

    @property
    def n_features(self) -> int:
        """γ̃ — number of appended feature columns."""
        return len(self.models)

    def update_hyperparameters(
        self,
        tasks: Sequence[Mapping[str, Any]],
        configs: Sequence[Mapping[str, Any]],
        y: np.ndarray,
    ) -> None:
        """Model-update phase: refit every model's hyperparameters."""
        for m in self.models:
            m.update(tasks, configs, np.asarray(y, dtype=float))

    def raw(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> np.ndarray:
        """Unscaled model outputs ``(γ̃,)`` at one point."""
        return np.array([m.predict(task, config) for m in self.models], dtype=float)

    def observe(self, values: np.ndarray) -> None:
        """Fold raw model outputs into the running normalization range."""
        v = np.atleast_2d(np.asarray(values, dtype=float))
        self._lo = np.minimum(self._lo, v.min(axis=0))
        self._hi = np.maximum(self._hi, v.max(axis=0))

    def scale(self, values: np.ndarray) -> np.ndarray:
        """Map raw model outputs onto ``[0, 1]`` with the running range."""
        v = np.atleast_2d(np.asarray(values, dtype=float))
        span = np.where(self._hi > self._lo, self._hi - self._lo, 1.0)
        lo = np.where(np.isfinite(self._lo), self._lo, 0.0)
        return np.clip((v - lo) / span, -1.0, 2.0)

    def enrich(
        self,
        task: Mapping[str, Any],
        configs: Sequence[Mapping[str, Any]],
        Xunit: np.ndarray,
        observe: bool = False,
    ) -> np.ndarray:
        """Append scaled model features to normalized inputs.

        Parameters
        ----------
        task:
            The task the configurations belong to.
        configs:
            Native configurations matching the rows of ``Xunit``.
        Xunit:
            ``(n, β)`` normalized inputs.
        observe:
            Whether these points extend the normalization range (True for
            training data, False for acquisition candidates).
        """
        Xunit = np.atleast_2d(np.asarray(Xunit, dtype=float))
        raw = np.vstack([self.raw(task, c) for c in configs])
        if observe:
            self.observe(raw)
        return np.hstack([Xunit, self.scale(raw)])

    def state_token(self) -> Optional[Any]:
        """Combined token over every model's hyperparameter state.

        The running normalization range is deliberately excluded: cached
        *raw* rows depend only on the models' coefficients (scaling is
        applied after caching).  ``None`` when any model cannot produce a
        token — cached raw rows are then invalid as soon as a model-update
        phase ran.
        """
        parts = []
        for m in self.models:
            t = m.state_token()
            if t is None:
                return None
            parts.append(t)
        return tuple(parts)

    def get_state(self) -> Any:
        """JSON-serializable snapshot of the running range + model states."""
        return {
            "lo": [float(v) for v in self._lo],
            "hi": [float(v) for v in self._hi],
            "models": [m.get_state() for m in self.models],
        }

    def set_state(self, state: Any) -> None:
        """Restore a :meth:`get_state` snapshot onto the same model list."""
        lo = np.asarray(state["lo"], dtype=float)
        hi = np.asarray(state["hi"], dtype=float)
        if lo.shape != self._lo.shape or hi.shape != self._hi.shape:
            raise ValueError("featurizer state has a different model count")
        self._lo, self._hi = lo, hi
        for m, s in zip(self.models, state["models"]):
            if s is not None:
                m.set_state(s)
