"""Tuning-problem definition shared by GPTune and the baseline tuners.

A :class:`TuningProblem` carries the three spaces of Table 1 — task space
``IS``, tuning space ``PS`` and output space ``OS`` — plus the black-box
objective and (optionally) coarse performance models (Sec. 3.3).  The
objective is invoked as ``objective(task_dict, config_dict)`` and must return
a scalar for γ = 1 or a length-γ sequence otherwise.  All tuners in this
package consume this interface, which mirrors GPTune's "autotune" problem
description.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional, Sequence

import numpy as np

from ..runtime.resilience import (
    EvalOutcome,
    EvalTimeoutError,
    FatalEvaluationError,
    RetryPolicy,
    run_with_retries,
)
from .space import Space

__all__ = ["TuningProblem"]

Objective = Callable[[Mapping[str, Any], Mapping[str, Any]], Any]
ModelFn = Callable[[Mapping[str, Any], Mapping[str, Any]], float]


class TuningProblem:
    """Black-box autotuning problem over (IS, PS, OS).

    Parameters
    ----------
    task_space:
        ``IS`` — the task parameters (e.g. matrix dimensions).
    tuning_space:
        ``PS`` — the parameters to optimize; its constraints may reference
        task parameter names (they are bound at feasibility checks).
    objective:
        The expensive black box ``y(t, x)``; scalar for γ = 1, length-γ
        sequence otherwise.  Minimized.
    n_objectives:
        γ — output dimension.
    models:
        Optional coarse performance models ``ỹ_s(t, x)``; see
        :mod:`repro.core.perfmodel`.  Either plain callables or
        :class:`repro.core.perfmodel.PerformanceModel` instances (which carry
        fittable hyperparameters).
    objective_names:
        Names of the γ outputs (defaults to ``y0, y1, …``).
    name:
        Problem label used in logs and history records.
    failure_value:
        Real application runs crash, time out, or return NaN.  When set,
        evaluations that raise or return non-finite values are replaced by
        this penalty vector (scalar broadcast over γ) instead of aborting the
        tuning run; the surrogate then learns to avoid the failing region.
        ``None`` (default) re-raises, for problems that must not fail.
    """

    def __init__(
        self,
        task_space: Space,
        tuning_space: Space,
        objective: Objective,
        n_objectives: int = 1,
        models: Optional[Sequence[ModelFn]] = None,
        objective_names: Optional[Sequence[str]] = None,
        name: str = "problem",
        failure_value: Optional[Any] = None,
    ):
        self.task_space = task_space
        self.tuning_space = tuning_space
        self.objective = objective
        self.n_objectives = int(n_objectives)
        if self.n_objectives < 1:
            raise ValueError("n_objectives must be >= 1")
        self.models: List[ModelFn] = list(models or [])
        names = list(objective_names or [f"y{i}" for i in range(self.n_objectives)])
        if len(names) != self.n_objectives:
            raise ValueError("objective_names length must equal n_objectives")
        self.objective_names = names
        self.name = str(name)
        if failure_value is None:
            self.failure_value: Optional[np.ndarray] = None
        else:
            fv = np.atleast_1d(np.asarray(failure_value, dtype=float))
            if fv.shape == (1,) and self.n_objectives > 1:
                fv = np.repeat(fv, self.n_objectives)
            if fv.shape != (self.n_objectives,):
                raise ValueError(
                    f"failure_value must broadcast to ({self.n_objectives},), got {fv.shape}"
                )
            if not np.all(np.isfinite(fv)):
                raise ValueError("failure_value must be finite")
            self.failure_value = fv
        self.n_failures = 0

    # -- evaluation -----------------------------------------------------
    def evaluate_outcome(
        self,
        task: Mapping[str, Any],
        config: Mapping[str, Any],
        retry: Optional[RetryPolicy] = None,
    ) -> EvalOutcome:
        """Run the black box under a retry policy; returns the full record.

        Every objective call is routed through
        :func:`repro.runtime.resilience.run_with_retries`: crashes, NaN/inf
        results and timeouts are retried up to ``retry.max_attempts`` with the
        policy's deterministic backoff.  When all attempts fail, the outcome's
        value becomes :attr:`failure_value` (and ``n_failures`` increments) —
        or, with no failure value configured, the last error is re-raised.

        The configuration is round-tripped through the tuning space first so
        integers/categoricals are exactly representable, matching what the
        surrogate saw.  A wrong-shaped objective result is a programming
        error and raises immediately, never retried or penalized.
        """
        t = self.task_space.to_dict(task)
        x = self.tuning_space.round_trip(config)
        objective, n_obj = self.objective, self.n_objectives

        def call() -> np.ndarray:
            y = np.atleast_1d(np.asarray(objective(t, x), dtype=float))
            if y.shape != (n_obj,):
                raise FatalEvaluationError(
                    f"objective returned shape {y.shape}, expected ({n_obj},)"
                )
            return y

        outcome = run_with_retries(call, retry)
        if outcome.failed:
            if self.failure_value is None:
                if outcome.error is not None:
                    raise outcome.error
                if outcome.failure_kind == "timeout":
                    raise EvalTimeoutError(outcome.message)
                raise ValueError(f"objective returned non-finite value at {x}")
            self.n_failures += 1
            outcome.value = self.failure_value.copy()
        return outcome

    def evaluate(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> np.ndarray:
        """Run the black box once; returns a ``(γ,)`` float vector.

        Thin wrapper over :meth:`evaluate_outcome` with the default (single
        attempt, no timeout) policy.
        """
        return self.evaluate_outcome(task, config).value

    def is_feasible(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> bool:
        """Joint feasibility of a configuration for a given task."""
        return self.tuning_space.is_feasible(config, extra=self.task_space.to_dict(task))

    def feasibility_on_unit(self, task: Mapping[str, Any]) -> Callable[[np.ndarray], np.ndarray]:
        """Vectorized feasibility predicate over *normalized* points.

        Returned callable maps ``(n, β)`` unit points to a boolean mask; used
        to confine acquisition optimizers to the feasible region.
        """
        tdict = self.task_space.to_dict(task)

        def check(Xunit: np.ndarray) -> np.ndarray:
            Xunit = np.atleast_2d(np.asarray(Xunit, dtype=float))
            return np.array(
                [
                    self.tuning_space.is_feasible(self.tuning_space.denormalize(u), extra=tdict)
                    for u in Xunit
                ],
                dtype=bool,
            )

        return check

    @property
    def has_models(self) -> bool:
        """Whether coarse performance models were supplied."""
        return bool(self.models)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuningProblem({self.name!r}, α={self.task_space.dimension}, "
            f"β={self.tuning_space.dimension}, γ={self.n_objectives}, "
            f"γ̃={len(self.models)})"
        )
