"""Acquisition functions for the search phase.

The search phase of Algorithm 1 maximizes *Expected Improvement* (EI) over
the posterior of the LCM, task by task.  For minimization with incumbent
``y_best``,

.. math::

    EI(x) = (y_{best} - \\mu(x))\\,\\Phi(z) + \\sigma(x)\\,\\phi(z),
    \\qquad z = (y_{best} - \\mu(x)) / \\sigma(x),

which balances exploitation (low predicted mean) and exploration (high
predicted variance).  A small helper also provides the scalarized
Pareto-improvement score used to rank candidates in multi-objective mode.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np
from scipy import special, stats

__all__ = ["expected_improvement", "EIAcquisition", "BatchedEIAcquisition"]

#: scipy.stats' own normalization constant for the standard normal pdf
_SQRT_2PI = np.sqrt(2.0 * np.pi)


def expected_improvement(mu: np.ndarray, var: np.ndarray, y_best) -> np.ndarray:
    """Vectorized EI for minimization (any shape, float64 output).

    Parameters
    ----------
    mu, var:
        Posterior mean and variance at the candidate points; arrays of any
        matching shape (the batched search path passes ``(n_tasks, N*)``).
    y_best:
        Incumbent (best observed) objective value — a scalar, or an array
        broadcastable against ``mu`` (e.g. ``(n_tasks, 1)`` per-task
        incumbents).

    Points with (numerically) zero variance get the deterministic
    improvement ``max(y_best - mu, 0)``; a batch whose variances are all
    zero returns that directly without touching the normal CDF/PDF.
    """
    mu = np.asarray(mu, dtype=float)
    sigma = np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0))
    imp = np.asarray(y_best, dtype=float) - mu
    out = np.maximum(imp, 0.0)
    pos = sigma > 1e-12
    if not pos.any():
        return out
    z = imp[pos] / sigma[pos]
    out[pos] = imp[pos] * stats.norm.cdf(z) + sigma[pos] * stats.norm.pdf(z)
    return np.maximum(out, 0.0, out=out)


class EIAcquisition:
    """EI bound to one task of a fitted surrogate.

    Parameters
    ----------
    predict:
        Callable ``(N*, β) -> (mu, var)`` — e.g.
        ``functools.partial(lcm.predict, task)``.
    y_best:
        Incumbent objective value (in the surrogate's transformed units).
    feasibility:
        Optional vectorized predicate over normalized points; infeasible
        candidates are assigned EI = -inf so optimizers avoid them.
    """

    def __init__(
        self,
        predict: Callable[[np.ndarray], tuple],
        y_best: float,
        feasibility: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.predict = predict
        self.y_best = float(y_best)
        self.feasibility = feasibility

    def __call__(self, Xunit: np.ndarray) -> np.ndarray:
        """EI at a batch of normalized points ``(N*, β)`` (higher is better)."""
        Xunit = np.atleast_2d(np.asarray(Xunit, dtype=float))
        mu, var = self.predict(Xunit)
        ei = expected_improvement(mu, var, self.y_best)
        if self.feasibility is not None:
            ok = np.asarray(self.feasibility(Xunit), dtype=bool)
            ei = np.where(ok, ei, -np.inf)
        return ei


class BatchedEIAcquisition:
    """EI over a task axis: every task's candidate block in one posterior call.

    The lockstep search phase advances all active tasks' swarms together and
    scores them with a single cross-task posterior evaluation
    (:meth:`repro.core.lcm.LCM.predict_tasks`) instead of ``n_tasks``
    separate :class:`EIAcquisition` calls per optimizer step.

    Parameters
    ----------
    predict_tasks:
        Callable ``(n_tasks, N*, β) -> (mu, var)`` with both outputs shaped
        ``(n_tasks, N*)`` — e.g. ``lambda X: lcm.predict_tasks(tasks, X)``.
    y_best:
        ``(n_tasks,)`` per-task incumbent objective values (in the
        surrogate's transformed units), aligned with ``predict_tasks``'s
        task order.
    feasibility:
        Optional sequence of per-task vectorized predicates over normalized
        points (``None`` entries mean unconstrained); infeasible candidates
        get EI = -inf.
    """

    def __init__(
        self,
        predict_tasks: Callable[[np.ndarray], tuple],
        y_best: np.ndarray,
        feasibility: Optional[Sequence[Optional[Callable]]] = None,
    ):
        self.predict_tasks = predict_tasks
        self.y_best = np.asarray(y_best, dtype=float).ravel()
        self.feasibility = feasibility

    def __call__(self, Xunit: np.ndarray) -> np.ndarray:
        """EI at ``(n_tasks, N*, β)`` blocks → ``(n_tasks, N*)`` scores."""
        Xunit = np.asarray(Xunit, dtype=float)
        if Xunit.ndim != 3 or Xunit.shape[0] != self.y_best.shape[0]:
            raise ValueError("expected (n_tasks, n_points, dim) candidate blocks")
        mu, var = self.predict_tasks(Xunit)
        # Same EI as expected_improvement(), with scipy.special.ndtr and the
        # explicit normal pdf in place of the stats.norm frontend — those are
        # exactly what stats.norm.cdf/pdf dispatch to, so the values are
        # bit-identical, but the distribution-object overhead would otherwise
        # be paid once per lockstep swarm step in the search hot loop.
        imp = self.y_best[:, None] - np.asarray(mu, dtype=float)
        sigma = np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0))
        ei = np.maximum(imp, 0.0)
        pos = sigma > 1e-12
        if pos.any():
            z = imp[pos] / sigma[pos]
            ei[pos] = imp[pos] * special.ndtr(z) + sigma[pos] * (
                np.exp(-(z**2) / 2.0) / _SQRT_2PI
            )
            np.maximum(ei, 0.0, out=ei)
        if self.feasibility is not None:
            for t, feas in enumerate(self.feasibility):
                if feas is None:
                    continue
                ok = np.asarray(feas(Xunit[t]), dtype=bool)
                ei[t] = np.where(ok, ei[t], -np.inf)
        return ei
