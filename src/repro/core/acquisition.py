"""Acquisition functions for the search phase.

The search phase of Algorithm 1 maximizes *Expected Improvement* (EI) over
the posterior of the LCM, task by task.  For minimization with incumbent
``y_best``,

.. math::

    EI(x) = (y_{best} - \\mu(x))\\,\\Phi(z) + \\sigma(x)\\,\\phi(z),
    \\qquad z = (y_{best} - \\mu(x)) / \\sigma(x),

which balances exploitation (low predicted mean) and exploration (high
predicted variance).  A small helper also provides the scalarized
Pareto-improvement score used to rank candidates in multi-objective mode.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import stats

__all__ = ["expected_improvement", "EIAcquisition"]


def expected_improvement(mu: np.ndarray, var: np.ndarray, y_best: float) -> np.ndarray:
    """Vectorized EI for minimization.

    Parameters
    ----------
    mu, var:
        Posterior mean and variance at the candidate points.
    y_best:
        Incumbent (best observed) objective value.

    Points with (numerically) zero variance get the deterministic
    improvement ``max(y_best - mu, 0)``.
    """
    mu = np.asarray(mu, dtype=float)
    sigma = np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0))
    imp = y_best - mu
    out = np.maximum(imp, 0.0)
    pos = sigma > 1e-12
    z = imp[pos] / sigma[pos]
    out = out.astype(float)
    out[pos] = imp[pos] * stats.norm.cdf(z) + sigma[pos] * stats.norm.pdf(z)
    return np.maximum(out, 0.0)


class EIAcquisition:
    """EI bound to one task of a fitted surrogate.

    Parameters
    ----------
    predict:
        Callable ``(N*, β) -> (mu, var)`` — e.g.
        ``functools.partial(lcm.predict, task)``.
    y_best:
        Incumbent objective value (in the surrogate's transformed units).
    feasibility:
        Optional vectorized predicate over normalized points; infeasible
        candidates are assigned EI = -inf so optimizers avoid them.
    """

    def __init__(
        self,
        predict: Callable[[np.ndarray], tuple],
        y_best: float,
        feasibility: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.predict = predict
        self.y_best = float(y_best)
        self.feasibility = feasibility

    def __call__(self, Xunit: np.ndarray) -> np.ndarray:
        """EI at a batch of normalized points ``(N*, β)`` (higher is better)."""
        Xunit = np.atleast_2d(np.asarray(Xunit, dtype=float))
        mu, var = self.predict(Xunit)
        ei = expected_improvement(mu, var, self.y_best)
        if self.feasibility is not None:
            ok = np.asarray(self.feasibility(Xunit), dtype=bool)
            ei = np.where(ok, ei, -np.inf)
        return ei
