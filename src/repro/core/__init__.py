"""GPTune core: spaces, surrogates, acquisition, and the MLA driver."""

from .acquisition import BatchedEIAcquisition, EIAcquisition, expected_improvement
from .data import TuningData
from .gp import GaussianProcess
from .history import HistoryDB
from .lcm import LCM, LCMParams
from .metrics import (
    dominates,
    hypervolume_2d,
    mean_stability,
    pareto_mask,
    stability,
    win_task,
)
from ..runtime.resilience import (
    EvalOutcome,
    EvalTimeoutError,
    FatalEvaluationError,
    RetryPolicy,
    RunCheckpoint,
)
from .mla import GPTune, IndependentGPs, TuneResult
from .model import (
    BackendSpec,
    PerTaskGP,
    SparseLCM,
    available_backends,
    get_backend,
    register_backend,
    select_backend,
)
from .options import Options
from .params import Categorical, Integer, Parameter, Real
from .perfmodel import (
    CallableModel,
    LinearPerformanceModel,
    ModelFeaturizer,
    PerformanceModel,
)
from .problem import TuningProblem
from .sampling import LHSSampler, RandomSampler, lhs_unit, sample_feasible
from .search import NSGA2, BatchedParticleSwarm, ParticleSwarm
from .sensitivity import sobol_indices, surrogate_sensitivity
from .space import Constraint, Space
from .tla import TransferLearner
from .validation import loo_diagnostics, loo_residuals

__all__ = [
    "BackendSpec",
    "Categorical",
    "CallableModel",
    "Constraint",
    "BatchedEIAcquisition",
    "EIAcquisition",
    "EvalOutcome",
    "EvalTimeoutError",
    "FatalEvaluationError",
    "GaussianProcess",
    "GPTune",
    "HistoryDB",
    "IndependentGPs",
    "Integer",
    "LCM",
    "LCMParams",
    "LHSSampler",
    "LinearPerformanceModel",
    "ModelFeaturizer",
    "NSGA2",
    "Options",
    "Parameter",
    "BatchedParticleSwarm",
    "ParticleSwarm",
    "PerformanceModel",
    "PerTaskGP",
    "RandomSampler",
    "Real",
    "RetryPolicy",
    "RunCheckpoint",
    "Space",
    "SparseLCM",
    "TransferLearner",
    "TuneResult",
    "TuningData",
    "TuningProblem",
    "sobol_indices",
    "surrogate_sensitivity",
    "available_backends",
    "dominates",
    "get_backend",
    "register_backend",
    "select_backend",
    "expected_improvement",
    "hypervolume_2d",
    "lhs_unit",
    "loo_diagnostics",
    "loo_residuals",
    "mean_stability",
    "pareto_mask",
    "sample_feasible",
    "stability",
    "win_task",
]
