"""Evaluation metrics from Sec. 6 of the paper.

* **WinTask** (Tab. 4) — the percentage of tasks on which one tuner finds a
  strictly better objective minimum than another.
* **stability** (Tab. 4) — anytime performance of a tuner on one task:
  ``mean(y*(t, x_1), …, y*(t, x_{ε_tot})) / y*(t)`` where ``y*(t, x_j)`` is
  the best value among samples ``1..j`` and ``y*(t)`` the best over all
  tuners.  1.0 is ideal; larger means the tuner converged late.
* Pareto utilities for the multi-objective study (Fig. 7): dominance masks
  and the 2-D hypervolume indicator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "pareto_mask",
    "dominates",
    "win_task",
    "stability",
    "mean_stability",
    "hypervolume_2d",
]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff point ``a`` Pareto-dominates ``b`` (all <=, some <)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_mask(Y: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of ``Y`` (``(n, γ)``, minimized).

    Duplicate rows are all kept (none strictly dominates the other).
    """
    Y = np.atleast_2d(np.asarray(Y, dtype=float))
    n = Y.shape[0]
    le = np.all(Y[:, None, :] <= Y[None, :, :], axis=2)
    lt = np.any(Y[:, None, :] < Y[None, :, :], axis=2)
    dominated = np.any(le & lt, axis=0)
    return ~dominated


def win_task(best_ours: Sequence[float], best_theirs: Sequence[float]) -> float:
    """WinTask: fraction of tasks where *ours* is strictly better (smaller).

    Parameters
    ----------
    best_ours, best_theirs:
        Per-task best objective values from the two tuners, same length.
    """
    a = np.asarray(best_ours, dtype=float)
    b = np.asarray(best_theirs, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("need two equal-length 1-D arrays")
    if a.size == 0:
        raise ValueError("need at least one task")
    return float(np.mean(a < b))


def stability(trajectory: Sequence[float], y_star: float) -> float:
    """Anytime-performance stability of one tuner on one task.

    Parameters
    ----------
    trajectory:
        Raw objective values in evaluation order (``y(t, x_1..x_ε)``); the
        running minimum is formed internally.
    y_star:
        Best value over all tuners for this task (the normalizer).
    """
    ys = np.asarray(trajectory, dtype=float)
    if ys.size == 0:
        raise ValueError("empty trajectory")
    if y_star <= 0:
        raise ValueError("y_star must be positive")
    return float(np.minimum.accumulate(ys).mean() / y_star)


def mean_stability(trajectories: Sequence[Sequence[float]], y_stars: Sequence[float]) -> float:
    """Average stability over tasks — the Tab. 4 anytime metric."""
    trajectories = list(trajectories)
    y_stars = list(y_stars)
    if len(trajectories) != len(y_stars) or not trajectories:
        raise ValueError("need matching, non-empty trajectory/normalizer lists")
    return float(np.mean([stability(t, s) for t, s in zip(trajectories, y_stars)]))


def hypervolume_2d(front: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume dominated by a 2-D front w.r.t. a reference point.

    Both objectives are minimized; points not dominating the reference
    contribute nothing.  Used to compare the paper's single-task vs multitask
    Pareto fronts quantitatively.
    """
    front = np.atleast_2d(np.asarray(front, dtype=float))
    if front.shape[1] != 2:
        raise ValueError("hypervolume_2d needs exactly two objectives")
    ref = np.asarray(reference, dtype=float)
    pts = front[np.all(front < ref, axis=1)]
    if pts.size == 0:
        return 0.0
    pts = pts[pareto_mask(pts)]
    pts = pts[np.argsort(pts[:, 0])]
    hv = 0.0
    prev_y = ref[1]
    for x, y in pts:
        hv += (ref[0] - x) * (prev_y - y)
        prev_y = y
    return float(hv)
