"""Containers for multitask tuning data.

Following Table 1 of the paper, a tuning run maintains

* ``T ∈ IS^δ``     — the array of tasks under consideration,
* ``X ∈ PS^{δ×ε}`` — the array of evaluated tuning parameter configurations,
* ``Y ∈ OS^{δ×ε}`` — the corresponding outputs (e.g. runtimes).

:class:`TuningData` stores these as per-task Python lists (the per-task sample
counts may differ, e.g. in multi-objective mode where ``k`` points are added
per iteration) together with helpers that flatten everything into the stacked
normalized arrays consumed by the LCM.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .space import Space

__all__ = ["TuningData"]


class TuningData:
    """Samples and outputs for ``δ`` tasks of one tuning problem.

    Parameters
    ----------
    task_space, tuning_space:
        The ``IS`` and ``PS`` spaces; used for normalization.
    tasks:
        Native task values (mappings or positional sequences), one per task.
    n_objectives:
        Output dimension γ; every recorded output must have this length.
    """

    def __init__(
        self,
        task_space: Space,
        tuning_space: Space,
        tasks: Sequence[Any],
        n_objectives: int = 1,
    ):
        self.task_space = task_space
        self.tuning_space = tuning_space
        self.tasks: List[Dict[str, Any]] = [task_space.to_dict(t) for t in tasks]
        self.n_objectives = int(n_objectives)
        if self.n_objectives < 1:
            raise ValueError("need at least one objective")
        self.X: List[List[Dict[str, Any]]] = [[] for _ in self.tasks]
        self.Y: List[List[np.ndarray]] = [[] for _ in self.tasks]
        # per-task sets of rounded normalized-x keys, maintained incrementally
        # by add() so proposal dedup is O(1) instead of O(evals) per lookup
        self._seen: List[set] = [set() for _ in self.tasks]

    # -- basic accessors ------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """δ — the number of tasks."""
        return len(self.tasks)

    def n_samples(self, task: Optional[int] = None) -> int:
        """Evaluation count for one task, or the total over all tasks."""
        if task is not None:
            return len(self.X[task])
        return sum(len(x) for x in self.X)

    def __len__(self) -> int:
        return self.n_samples()

    # -- recording --------------------------------------------------------
    def add(self, task: int, x: Mapping[str, Any], y: Any) -> None:
        """Record one evaluation ``y(t_task, x)``.

        ``y`` may be a scalar (γ=1) or a length-γ sequence.
        """
        yv = np.atleast_1d(np.asarray(y, dtype=float))
        if yv.shape != (self.n_objectives,):
            raise ValueError(
                f"expected {self.n_objectives} objective value(s), got shape {yv.shape}"
            )
        xd = self.tuning_space.to_dict(x)
        self.X[task].append(xd)
        self.Y[task].append(yv)
        self._seen[task].add(self.x_key(xd))

    def extend(self, task: int, xs: Sequence[Mapping[str, Any]], ys: Sequence[Any]) -> None:
        """Record a batch of evaluations for one task."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys length mismatch")
        for x, y in zip(xs, ys):
            self.add(task, x, y)

    # -- dedup support -----------------------------------------------------
    def x_key(self, x: Mapping[str, Any]) -> Tuple:
        """Canonical hashable key of one configuration (rounded unit coords)."""
        return tuple(np.round(self.tuning_space.normalize(x), 9))

    def seen_keys(self, task: int) -> set:
        """Keys of every configuration already evaluated for one task.

        Maintained incrementally by :meth:`add` (covering preload, history
        and checkpoint-resume paths), so membership checks during proposal
        dedup cost O(1) instead of recomputing the whole set from scratch —
        the old per-proposal rebuild was O(evals²) over a campaign.  The
        returned set is live; treat it as read-only.
        """
        return self._seen[task]

    # -- best-so-far ------------------------------------------------------
    def best(self, task: int, objective: int = 0) -> Tuple[Dict[str, Any], float]:
        """Return ``(x*, y*)`` minimizing one objective for one task."""
        if not self.Y[task]:
            raise ValueError(f"task {task} has no samples")
        ys = np.array([y[objective] for y in self.Y[task]])
        i = int(np.argmin(ys))
        return self.X[task][i], float(ys[i])

    def best_trajectory(self, task: int, objective: int = 0) -> np.ndarray:
        """Running minimum of one objective (the *anytime* performance curve)."""
        ys = np.array([y[objective] for y in self.Y[task]], dtype=float)
        return np.minimum.accumulate(ys)

    def pareto_front(self, task: int) -> Tuple[List[Dict[str, Any]], np.ndarray]:
        """Non-dominated ``(configs, objectives)`` for one task (minimization)."""
        from .metrics import pareto_mask

        if not self.Y[task]:
            return [], np.empty((0, self.n_objectives))
        Y = np.vstack(self.Y[task])
        mask = pareto_mask(Y)
        configs = [x for x, m in zip(self.X[task], mask) if m]
        return configs, Y[mask]

    # -- stacked views for the LCM ----------------------------------------
    def stacked(self, objective: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten all samples into LCM inputs.

        Returns
        -------
        X_unit:
            ``(N, β)`` normalized tuning parameter points, tasks concatenated.
        y:
            ``(N,)`` raw objective values for the selected objective.
        task_index:
            ``(N,)`` integer task id per row.
        """
        rows, ys, idx = [], [], []
        for i, (xs, yvals) in enumerate(zip(self.X, self.Y)):
            for x, y in zip(xs, yvals):
                rows.append(self.tuning_space.normalize(x))
                ys.append(y[objective])
                idx.append(i)
        if not rows:
            beta = self.tuning_space.dimension
            return np.empty((0, beta)), np.empty(0), np.empty(0, dtype=int)
        return np.vstack(rows), np.asarray(ys, dtype=float), np.asarray(idx, dtype=int)

    def normalized_tasks(self) -> np.ndarray:
        """``(δ, α)`` normalized task parameter matrix."""
        return self.task_space.normalize_many(self.tasks)

    # -- (de)serialization ---------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Flatten to JSON-serializable records (see :mod:`repro.core.history`)."""
        recs = []
        for i, task in enumerate(self.tasks):
            for x, y in zip(self.X[i], self.Y[i]):
                recs.append({"task": dict(task), "x": dict(x), "y": [float(v) for v in y]})
        return recs

    def load_records(self, records: Sequence[Mapping[str, Any]]) -> int:
        """Merge archived records whose task matches one of ours.

        Returns the number of records absorbed; foreign-task records are
        ignored (they belong to a different MLA instance).
        """
        keyed = {self._task_key(t): i for i, t in enumerate(self.tasks)}
        absorbed = 0
        for rec in records:
            key = self._task_key(self.task_space.to_dict(rec["task"]))
            if key in keyed:
                self.add(keyed[key], rec["x"], rec["y"])
                absorbed += 1
        return absorbed

    def _task_key(self, task: Mapping[str, Any]) -> Tuple:
        return tuple(repr(task[n]) for n in self.task_space.names)
