"""Parameter types for task and tuning spaces.

GPTune describes each task parameter and tuning parameter as one of three
types (Sec. 2 of the paper): *real*, *integer*, or *categorical* (a list of
discrete possibilities such as algorithm choices).  Every parameter knows how
to map its native values onto the unit interval ``[0, 1]`` and back; the
Gaussian-process machinery (kernels, LCM, acquisition search) always operates
in that normalized space, exactly as the reference GPTune implementation does.

The classes here are deliberately immutable value objects: a
:class:`~repro.core.space.Space` is a tuple of parameters plus constraints.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

__all__ = ["Parameter", "Real", "Integer", "Categorical"]


class Parameter:
    """Abstract base class for a single named parameter.

    Subclasses implement the bijection (up to rounding) between native values
    and the normalized unit interval:

    * :meth:`normalize` maps a native value to ``[0, 1]``.
    * :meth:`denormalize` maps a point of ``[0, 1]`` back to a native value.
    * :meth:`sample` draws a uniform random native value.

    Parameters
    ----------
    name:
        Identifier used in configuration dictionaries and constraint
        expressions.  Must be a valid Python identifier so constraints can be
        written as plain expressions over parameter names.
    """

    def __init__(self, name: str):
        if not name.isidentifier():
            raise ValueError(f"parameter name {name!r} is not a valid identifier")
        self.name = name

    # -- interface -------------------------------------------------------
    def normalize(self, value: Any) -> float:
        """Map a native value onto ``[0, 1]``."""
        raise NotImplementedError

    def denormalize(self, unit: float) -> Any:
        """Map a point of ``[0, 1]`` back to a native value."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random native value."""
        return self.denormalize(float(rng.random()))

    @property
    def is_categorical(self) -> bool:
        """Whether the parameter is a discrete choice list."""
        return False

    @property
    def cardinality(self) -> float:
        """Number of distinct values (``math.inf`` for reals)."""
        return math.inf

    def grid(self, n: int) -> list:
        """Return up to ``n`` evenly spaced native values (for grid search)."""
        n = max(int(n), 1)
        return [self.denormalize(u) for u in np.linspace(0.0, 1.0, n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class Real(Parameter):
    """A real-valued parameter on a closed interval ``[lb, ub]``.

    Parameters
    ----------
    name:
        Parameter name.
    lb, ub:
        Inclusive bounds, ``lb < ub``.
    transform:
        ``"linear"`` (default) or ``"log"``.  With ``"log"`` the unit
        interval maps to the interval geometrically, which is the right
        choice for scale-like parameters (e.g. tolerance thresholds).
    """

    def __init__(self, name: str, lb: float, ub: float, transform: str = "linear"):
        super().__init__(name)
        lb, ub = float(lb), float(ub)
        if not lb < ub:
            raise ValueError(f"{name}: need lb < ub, got [{lb}, {ub}]")
        if transform not in ("linear", "log"):
            raise ValueError(f"{name}: unknown transform {transform!r}")
        if transform == "log" and lb <= 0:
            raise ValueError(f"{name}: log transform requires lb > 0")
        self.lb, self.ub, self.transform = lb, ub, transform

    def normalize(self, value: Any) -> float:
        v = float(value)
        if self.transform == "log":
            u = (math.log(v) - math.log(self.lb)) / (math.log(self.ub) - math.log(self.lb))
        else:
            u = (v - self.lb) / (self.ub - self.lb)
        return min(1.0, max(0.0, u))

    def denormalize(self, unit: float) -> float:
        u = min(1.0, max(0.0, float(unit)))
        if self.transform == "log":
            return math.exp(math.log(self.lb) + u * (math.log(self.ub) - math.log(self.lb)))
        return self.lb + u * (self.ub - self.lb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Real({self.name!r}, {self.lb}, {self.ub}, {self.transform!r})"


class Integer(Parameter):
    """An integer parameter on the inclusive range ``[lb, ub]``.

    The unit interval is partitioned into ``ub - lb + 1`` equal cells so that
    every integer value owns the same normalized measure; this keeps random
    sampling in normalized space uniform over the integers.

    Parameters
    ----------
    name:
        Parameter name.
    lb, ub:
        Inclusive integer bounds, ``lb <= ub``.
    transform:
        ``"linear"`` (default) or ``"log"`` (geometric spacing; needs
        ``lb >= 1``).
    """

    def __init__(self, name: str, lb: int, ub: int, transform: str = "linear"):
        super().__init__(name)
        lb, ub = int(lb), int(ub)
        if lb > ub:
            raise ValueError(f"{name}: need lb <= ub, got [{lb}, {ub}]")
        if transform not in ("linear", "log"):
            raise ValueError(f"{name}: unknown transform {transform!r}")
        if transform == "log" and lb < 1:
            raise ValueError(f"{name}: log transform requires lb >= 1")
        self.lb, self.ub, self.transform = lb, ub, transform

    @property
    def cardinality(self) -> float:
        return self.ub - self.lb + 1

    def normalize(self, value: Any) -> float:
        v = int(round(float(value)))
        v = min(self.ub, max(self.lb, v))
        if self.transform == "log":
            if self.ub == self.lb:
                return 0.5
            u = (math.log(v) - math.log(self.lb)) / (math.log(self.ub) - math.log(self.lb))
            return min(1.0, max(0.0, u))
        # cell-centre encoding: integer k occupies [(k-lb)/n, (k-lb+1)/n)
        n = self.cardinality
        return (v - self.lb + 0.5) / n

    def denormalize(self, unit: float) -> int:
        u = min(1.0, max(0.0, float(unit)))
        if self.transform == "log":
            v = math.exp(math.log(self.lb) + u * (math.log(max(self.ub, 1)) - math.log(self.lb)))
            return min(self.ub, max(self.lb, int(round(v))))
        n = self.cardinality
        k = int(u * n)  # u == 1.0 falls into the last cell below
        return min(self.ub, self.lb + k)

    def grid(self, n: int) -> list:
        vals = sorted({self.denormalize(u) for u in np.linspace(0.0, 1.0, max(int(n), 1))})
        return vals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Integer({self.name!r}, {self.lb}, {self.ub})"


class Categorical(Parameter):
    """A categorical parameter over an explicit list of choices.

    Categories are encoded as equal-width cells of ``[0, 1]`` in the given
    order.  The kernel treats nearby cells as "similar", which matches the
    reference GPTune behaviour of projecting categoricals onto a continuous
    axis; order your categories so that semantically close choices are
    adjacent when that structure exists.

    Parameters
    ----------
    name:
        Parameter name.
    categories:
        Non-empty sequence of distinct, hashable choices.
    """

    def __init__(self, name: str, categories: Sequence[Any]):
        super().__init__(name)
        cats = list(categories)
        if not cats:
            raise ValueError(f"{name}: need at least one category")
        if len(set(map(repr, cats))) != len(cats):
            raise ValueError(f"{name}: duplicate categories")
        self.categories = cats
        self._index = {repr(c): i for i, c in enumerate(cats)}

    @property
    def is_categorical(self) -> bool:
        return True

    @property
    def cardinality(self) -> float:
        return len(self.categories)

    def normalize(self, value: Any) -> float:
        try:
            i = self._index[repr(value)]
        except KeyError:
            raise ValueError(f"{self.name}: {value!r} is not a category") from None
        return (i + 0.5) / len(self.categories)

    def denormalize(self, unit: float) -> Any:
        u = min(1.0, max(0.0, float(unit)))
        k = min(len(self.categories) - 1, int(u * len(self.categories)))
        return self.categories[k]

    def grid(self, n: int) -> list:
        return list(self.categories[: max(int(n), 1)]) if n < len(self.categories) else list(self.categories)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Categorical({self.name!r}, {self.categories!r})"
