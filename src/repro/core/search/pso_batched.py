"""Lockstep Particle Swarm Optimization over many tasks at once.

The paper's search phase runs one EI maximization per task; since the tasks
share one fitted LCM, their swarms can advance *in lockstep*: all positions
live in a single ``(n_tasks, n_particles, dim)`` tensor and every PSO step
issues exactly one batched objective evaluation (one cross-task posterior
call) instead of ``n_tasks`` small ones.  Same inertia-weight dynamics,
reflecting bounds, and batch-proposal selection as
:class:`~repro.core.search.pso.ParticleSwarm`, with independent per-task
personal/global bests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["BatchedParticleSwarm"]


class BatchedParticleSwarm:
    """Inertia-weight PSO maximizer on ``[0, 1]^dim``, one swarm per task.

    Parameters
    ----------
    dim:
        Search dimensionality.
    n_tasks:
        Number of independent swarms advanced in lockstep.
    n_particles:
        Swarm size (per task).
    iterations:
        Number of velocity/position updates.
    inertia, cognitive, social:
        Classic PSO coefficients (ω, c1, c2).  Inertia decays linearly to
        0.4·ω over the run, shifting from exploration to exploitation.
    seed:
        Randomness seed (one generator drives all swarms, so a fixed seed
        reproduces every task's trajectory).
    """

    def __init__(
        self,
        dim: int,
        n_tasks: int,
        n_particles: int = 40,
        iterations: int = 30,
        inertia: float = 0.72,
        cognitive: float = 1.49,
        social: float = 1.49,
        seed: Optional[int] = None,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.dim = int(dim)
        self.n_tasks = int(n_tasks)
        self.n_particles = max(2, int(n_particles))
        self.iterations = max(1, int(iterations))
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.rng = np.random.default_rng(seed)

    def maximize(
        self,
        objective: Callable[[np.ndarray], np.ndarray],
        x0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Maximize a batched objective ``(n_tasks, n, dim) -> (n_tasks, n)``.

        Parameters
        ----------
        objective:
            Batch objective over per-task candidate blocks; ``-inf`` values
            mark infeasible points.
        x0:
            Optional per-task seed positions — ``(n_tasks, dim)`` (one seed
            each, e.g. the incumbents) or ``(n_tasks, k, dim)`` — injected
            into the initial swarms.

        Returns
        -------
        ``(x_best, f_best)`` — ``(n_tasks, dim)`` best positions and their
        ``(n_tasks,)`` values.
        """
        T, n, d = self.n_tasks, self.n_particles, self.dim
        pos = self.rng.random((T, n, d))
        if x0 is not None:
            x0 = np.asarray(x0, dtype=float)
            if x0.ndim == 2:
                x0 = x0[:, None, :]
            if x0.shape[0] != T or x0.shape[2] != d:
                raise ValueError("x0 must be (n_tasks, k, dim) or (n_tasks, dim)")
            k = min(x0.shape[1], n)
            pos[:, :k] = np.clip(x0[:, :k], 0.0, 1.0)
        vel = self.rng.uniform(-0.1, 0.1, (T, n, d))

        fit = np.asarray(objective(pos), dtype=float)
        pbest, pbest_f = pos.copy(), fit.copy()
        rows = np.arange(T)
        g = np.argmax(pbest_f, axis=1)
        gbest = pbest[rows, g].copy()  # (T, dim)
        gbest_f = pbest_f[rows, g].copy()  # (T,)

        for it in range(self.iterations):
            w = self.inertia * (1.0 - 0.6 * it / max(1, self.iterations - 1))
            r1 = self.rng.random((T, n, d))
            r2 = self.rng.random((T, n, d))
            vel = (
                w * vel
                + self.cognitive * r1 * (pbest - pos)
                + self.social * r2 * (gbest[:, None, :] - pos)
            )
            np.clip(vel, -0.5, 0.5, out=vel)
            pos = pos + vel
            # reflecting bounds keep particles inside the cube
            over, under = pos > 1.0, pos < 0.0
            pos[over] = 2.0 - pos[over]
            pos[under] = -pos[under]
            np.clip(pos, 0.0, 1.0, out=pos)
            vel[over | under] *= -0.5

            fit = np.asarray(objective(pos), dtype=float)
            improved = fit > pbest_f
            pbest[improved] = pos[improved]
            pbest_f[improved] = fit[improved]
            g = np.argmax(pbest_f, axis=1)
            better = pbest_f[rows, g] > gbest_f
            gbest[better] = pbest[rows, g][better]
            gbest_f[better] = pbest_f[rows, g][better]
        self._pbest, self._pbest_f = pbest, pbest_f
        return gbest.copy(), gbest_f.copy()

    def top_batch(self, q: int, min_dist: float = 0.05) -> List[np.ndarray]:
        """Per-task diverse high-scoring positions from the last run.

        Applies :meth:`ParticleSwarm.top_batch`'s greedy min-distance pick
        to each task's personal bests; returns one ``(<=q, dim)`` array per
        task.  Must be called after :meth:`maximize`.
        """
        if not hasattr(self, "_pbest"):
            raise RuntimeError("top_batch() before maximize()")
        out: List[np.ndarray] = []
        for t in range(self.n_tasks):
            order = np.argsort(-self._pbest_f[t], kind="stable")
            picked: list = []
            for i in order:
                if not np.isfinite(self._pbest_f[t, i]):
                    continue
                x = self._pbest[t, i]
                if all(np.linalg.norm(x - p) >= min_dist for p in picked):
                    picked.append(x.copy())
                if len(picked) >= q:
                    break
            if not picked:  # everything infeasible/-inf: return the global best
                picked = [self._pbest[t, order[0]].copy()]
            out.append(np.vstack(picked))
        return out
