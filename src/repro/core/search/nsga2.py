"""NSGA-II — non-dominated sorting genetic algorithm II (Deb et al. 2002).

Used by the multi-objective search phase (Algorithm 2): candidates are ranked
by Pareto dominance fronts, ties broken by crowding distance, and evolved
with simulated-binary crossover (SBX) and polynomial mutation on the unit
hypercube.  The implementation minimizes all objectives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["fast_non_dominated_sort", "crowding_distance", "NSGA2"]


def fast_non_dominated_sort(F: np.ndarray) -> List[np.ndarray]:
    """Partition rows of ``F`` (``(n, γ)`` objectives, minimized) into fronts.

    Returns a list of integer index arrays; front 0 is the Pareto set of the
    population, front 1 the Pareto set after removing front 0, and so on.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    n = F.shape[0]
    # dominates[i, j] = True iff i dominates j (<= everywhere, < somewhere)
    le = np.all(F[:, None, :] <= F[None, :, :], axis=2)
    lt = np.any(F[:, None, :] < F[None, :, :], axis=2)
    dominates = le & lt
    dominated_count = dominates.sum(axis=0).astype(int)
    fronts: List[np.ndarray] = []
    current = np.where(dominated_count == 0)[0]
    assigned = np.zeros(n, dtype=bool)
    while current.size:
        fronts.append(current)
        assigned[current] = True
        dominated_count = dominated_count - dominates[current].sum(axis=0)
        current = np.where((dominated_count == 0) & ~assigned)[0]
    return fronts


def crowding_distance(F: np.ndarray) -> np.ndarray:
    """Crowding distance of each row within one front (larger = less crowded).

    Boundary points of each objective get infinite distance, preserving the
    extremes of the front.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    n, m = F.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    with np.errstate(invalid="ignore"):
        for j in range(m):
            order = np.argsort(F[:, j], kind="stable")
            fj = F[order, j]
            span = fj[-1] - fj[0]
            dist[order[0]] = dist[order[-1]] = np.inf
            if not np.isfinite(span) or span <= 0:
                continue
            dist[order[1:-1]] += (fj[2:] - fj[:-2]) / span
    return dist


class NSGA2:
    """NSGA-II minimizer over ``[0, 1]^dim``.

    Parameters
    ----------
    dim:
        Decision-space dimensionality.
    pop_size:
        Population size (rounded up to an even number).
    generations:
        Evolution steps.
    eta_crossover, eta_mutation:
        SBX / polynomial-mutation distribution indices.
    p_crossover, p_mutation:
        Crossover probability and per-gene mutation probability
        (``None`` → ``1/dim``).
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        dim: int,
        pop_size: int = 40,
        generations: int = 25,
        eta_crossover: float = 15.0,
        eta_mutation: float = 20.0,
        p_crossover: float = 0.9,
        p_mutation: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self.pop_size = int(pop_size) + int(pop_size) % 2
        self.generations = max(1, int(generations))
        self.eta_c = float(eta_crossover)
        self.eta_m = float(eta_mutation)
        self.p_c = float(p_crossover)
        self.p_m = 1.0 / dim if p_mutation is None else float(p_mutation)
        self.rng = np.random.default_rng(seed)

    # -- variation operators -----------------------------------------------
    def _sbx(self, p1: np.ndarray, p2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover of two parents."""
        c1, c2 = p1.copy(), p2.copy()
        if self.rng.random() > self.p_c:
            return c1, c2
        u = self.rng.random(self.dim)
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.eta_c + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.eta_c + 1.0)),
        )
        mask = self.rng.random(self.dim) < 0.5
        b = np.where(mask, beta, 1.0)
        c1 = 0.5 * ((1 + b) * p1 + (1 - b) * p2)
        c2 = 0.5 * ((1 - b) * p1 + (1 + b) * p2)
        return np.clip(c1, 0, 1), np.clip(c2, 0, 1)

    def _mutate(self, x: np.ndarray) -> np.ndarray:
        """Polynomial mutation (in place on a copy)."""
        y = x.copy()
        genes = self.rng.random(self.dim) < self.p_m
        if not genes.any():
            return y
        u = self.rng.random(self.dim)
        delta = np.where(
            u < 0.5,
            (2.0 * u) ** (1.0 / (self.eta_m + 1.0)) - 1.0,
            1.0 - (2.0 * (1.0 - u)) ** (1.0 / (self.eta_m + 1.0)),
        )
        y[genes] = np.clip(y[genes] + delta[genes], 0.0, 1.0)
        return y

    def _tournament(self, rank: np.ndarray, crowd: np.ndarray) -> int:
        """Binary tournament on (rank, crowding distance)."""
        i, j = self.rng.integers(0, rank.shape[0], 2)
        if rank[i] < rank[j]:
            return int(i)
        if rank[j] < rank[i]:
            return int(j)
        return int(i) if crowd[i] >= crowd[j] else int(j)

    # -- main loop --------------------------------------------------------
    def minimize(
        self,
        objectives: Callable[[np.ndarray], np.ndarray],
        x0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evolve toward the Pareto front of a batch objective.

        Parameters
        ----------
        objectives:
            Vectorized ``(n, dim) -> (n, γ)`` function, all objectives
            minimized.  Rows may contain ``inf`` for infeasible points.
        x0:
            Optional seed individuals injected into the initial population.

        Returns
        -------
        ``(X, F)`` — decision vectors and objective rows of the final
        population's first (non-dominated) front.
        """
        pop = self.rng.random((self.pop_size, self.dim))
        if x0 is not None:
            x0 = np.atleast_2d(np.asarray(x0, dtype=float))
            k = min(x0.shape[0], self.pop_size)
            pop[:k] = np.clip(x0[:k], 0.0, 1.0)
        F = np.atleast_2d(np.asarray(objectives(pop), dtype=float))

        for _ in range(self.generations):
            fronts = fast_non_dominated_sort(F)
            rank = np.empty(pop.shape[0], dtype=int)
            crowd = np.empty(pop.shape[0])
            for r, idx in enumerate(fronts):
                rank[idx] = r
                crowd[idx] = crowding_distance(F[idx])

            children = []
            while len(children) < self.pop_size:
                a = pop[self._tournament(rank, crowd)]
                b = pop[self._tournament(rank, crowd)]
                c1, c2 = self._sbx(a, b)
                children.append(self._mutate(c1))
                children.append(self._mutate(c2))
            child = np.vstack(children[: self.pop_size])
            Fc = np.atleast_2d(np.asarray(objectives(child), dtype=float))

            # elitist environmental selection on parents ∪ children
            allX = np.vstack([pop, child])
            allF = np.vstack([F, Fc])
            fronts = fast_non_dominated_sort(allF)
            keep: List[int] = []
            for idx in fronts:
                if len(keep) + idx.size <= self.pop_size:
                    keep.extend(idx.tolist())
                else:
                    cd = crowding_distance(allF[idx])
                    order = np.argsort(-cd, kind="stable")
                    keep.extend(idx[order][: self.pop_size - len(keep)].tolist())
                    break
            pop, F = allX[keep], allF[keep]

        first = fast_non_dominated_sort(F)[0]
        return pop[first], F[first]
