"""NSGA-II — non-dominated sorting genetic algorithm II (Deb et al. 2002).

Used by the multi-objective search phase (Algorithm 2): candidates are ranked
by Pareto dominance fronts, ties broken by crowding distance, and evolved
with simulated-binary crossover (SBX) and polynomial mutation on the unit
hypercube.  The implementation minimizes all objectives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["fast_non_dominated_sort", "crowding_distance", "NSGA2"]


def fast_non_dominated_sort(F: np.ndarray) -> List[np.ndarray]:
    """Partition rows of ``F`` (``(n, γ)`` objectives, minimized) into fronts.

    Returns a list of integer index arrays; front 0 is the Pareto set of the
    population, front 1 the Pareto set after removing front 0, and so on.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    n = F.shape[0]
    # dominates[i, j] = True iff i dominates j (<= everywhere, < somewhere)
    le = np.all(F[:, None, :] <= F[None, :, :], axis=2)
    lt = np.any(F[:, None, :] < F[None, :, :], axis=2)
    dominates = le & lt
    dominated_count = dominates.sum(axis=0).astype(int)
    fronts: List[np.ndarray] = []
    current = np.where(dominated_count == 0)[0]
    assigned = np.zeros(n, dtype=bool)
    while current.size:
        fronts.append(current)
        assigned[current] = True
        dominated_count = dominated_count - dominates[current].sum(axis=0)
        current = np.where((dominated_count == 0) & ~assigned)[0]
    return fronts


def crowding_distance(F: np.ndarray) -> np.ndarray:
    """Crowding distance of each row within one front (larger = less crowded).

    Boundary points of each objective get infinite distance, preserving the
    extremes of the front.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    n, m = F.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    with np.errstate(invalid="ignore"):
        for j in range(m):
            order = np.argsort(F[:, j], kind="stable")
            fj = F[order, j]
            span = fj[-1] - fj[0]
            dist[order[0]] = dist[order[-1]] = np.inf
            if not np.isfinite(span) or span <= 0:
                continue
            dist[order[1:-1]] += (fj[2:] - fj[:-2]) / span
    return dist


class NSGA2:
    """NSGA-II minimizer over ``[0, 1]^dim``.

    Parameters
    ----------
    dim:
        Decision-space dimensionality.
    pop_size:
        Population size (rounded up to an even number).
    generations:
        Evolution steps.
    eta_crossover, eta_mutation:
        SBX / polynomial-mutation distribution indices.
    p_crossover, p_mutation:
        Crossover probability and per-gene mutation probability
        (``None`` → ``1/dim``).
    seed:
        Randomness seed.
    label:
        Optional context string (e.g. ``"task 3"``) included in stepping-API
        protocol errors so a misuse inside a multi-task lockstep loop names
        the instance (and generation) that raised.
    """

    def __init__(
        self,
        dim: int,
        pop_size: int = 40,
        generations: int = 25,
        eta_crossover: float = 15.0,
        eta_mutation: float = 20.0,
        p_crossover: float = 0.9,
        p_mutation: Optional[float] = None,
        seed: Optional[int] = None,
        label: Optional[str] = None,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self.label = label
        self._generation = 0
        self.pop_size = int(pop_size) + int(pop_size) % 2
        self.generations = max(1, int(generations))
        self.eta_c = float(eta_crossover)
        self.eta_m = float(eta_mutation)
        self.p_c = float(p_crossover)
        self.p_m = 1.0 / dim if p_mutation is None else float(p_mutation)
        self.rng = np.random.default_rng(seed)
        self._pop: Optional[np.ndarray] = None
        self._F: Optional[np.ndarray] = None
        self._children: Optional[np.ndarray] = None

    # -- variation operators -----------------------------------------------
    def _sbx(self, p1: np.ndarray, p2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover of two parents."""
        c1, c2 = p1.copy(), p2.copy()
        if self.rng.random() > self.p_c:
            return c1, c2
        u = self.rng.random(self.dim)
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.eta_c + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.eta_c + 1.0)),
        )
        mask = self.rng.random(self.dim) < 0.5
        b = np.where(mask, beta, 1.0)
        c1 = 0.5 * ((1 + b) * p1 + (1 - b) * p2)
        c2 = 0.5 * ((1 - b) * p1 + (1 + b) * p2)
        return np.clip(c1, 0, 1), np.clip(c2, 0, 1)

    def _mutate(self, x: np.ndarray) -> np.ndarray:
        """Polynomial mutation (in place on a copy)."""
        y = x.copy()
        genes = self.rng.random(self.dim) < self.p_m
        if not genes.any():
            return y
        u = self.rng.random(self.dim)
        delta = np.where(
            u < 0.5,
            (2.0 * u) ** (1.0 / (self.eta_m + 1.0)) - 1.0,
            1.0 - (2.0 * (1.0 - u)) ** (1.0 / (self.eta_m + 1.0)),
        )
        y[genes] = np.clip(y[genes] + delta[genes], 0.0, 1.0)
        return y

    def _tournament(self, rank: np.ndarray, crowd: np.ndarray) -> int:
        """Binary tournament on (rank, crowding distance)."""
        i, j = self.rng.integers(0, rank.shape[0], 2)
        if rank[i] < rank[j]:
            return int(i)
        if rank[j] < rank[i]:
            return int(j)
        return int(i) if crowd[i] >= crowd[j] else int(j)

    # -- ask/tell stepping API --------------------------------------------
    #
    # The lockstep multi-objective search phase advances several tasks'
    # NSGA-II instances generation by generation, stacking every task's
    # population into one batched surrogate evaluation.  The monolithic
    # :meth:`minimize` is a thin driver over these steps (same RNG call
    # order, so seeded runs are unchanged).

    def initialize(self, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Create the initial population; returns it for evaluation.

        Feed the objective rows back via :meth:`tell` before the first
        :meth:`ask`.
        """
        pop = self.rng.random((self.pop_size, self.dim))
        if x0 is not None:
            x0 = np.atleast_2d(np.asarray(x0, dtype=float))
            k = min(x0.shape[0], self.pop_size)
            pop[:k] = np.clip(x0[:k], 0.0, 1.0)
        self._pop = pop
        self._F = None
        self._children = None
        self._generation = 0
        return pop

    def _context(self) -> str:
        """Error-context suffix naming the instance and its generation."""
        where = f"{self.label}, " if self.label else ""
        return f" ({where}generation {self._generation})"

    def ask(self) -> np.ndarray:
        """Breed one generation of children from the current population."""
        if self._pop is None or self._F is None:
            raise RuntimeError("ask() before initialize()/tell()" + self._context())
        pop, F = self._pop, self._F
        fronts = fast_non_dominated_sort(F)
        rank = np.empty(pop.shape[0], dtype=int)
        crowd = np.empty(pop.shape[0])
        for r, idx in enumerate(fronts):
            rank[idx] = r
            crowd[idx] = crowding_distance(F[idx])

        children = []
        while len(children) < self.pop_size:
            a = pop[self._tournament(rank, crowd)]
            b = pop[self._tournament(rank, crowd)]
            c1, c2 = self._sbx(a, b)
            children.append(self._mutate(c1))
            children.append(self._mutate(c2))
        self._children = np.vstack(children[: self.pop_size])
        self._generation += 1
        return self._children

    def tell(self, F: np.ndarray) -> None:
        """Absorb objective rows for the last :meth:`initialize`/:meth:`ask`.

        The first call after :meth:`initialize` records the initial
        population's fitness; subsequent calls run the elitist environmental
        selection on parents ∪ children.
        """
        F = np.atleast_2d(np.asarray(F, dtype=float))
        if self._pop is None:
            raise RuntimeError("tell() before initialize()" + self._context())
        if self._F is None:
            if F.shape[0] != self._pop.shape[0]:
                raise ValueError("fitness row count != population size")
            self._F = F
            return
        if self._children is None:
            raise RuntimeError("tell() without a pending ask()" + self._context())
        if F.shape[0] != self._children.shape[0]:
            raise ValueError("fitness row count != children count")
        # elitist environmental selection on parents ∪ children
        allX = np.vstack([self._pop, self._children])
        allF = np.vstack([self._F, F])
        fronts = fast_non_dominated_sort(allF)
        keep: List[int] = []
        for idx in fronts:
            if len(keep) + idx.size <= self.pop_size:
                keep.extend(idx.tolist())
            else:
                cd = crowding_distance(allF[idx])
                order = np.argsort(-cd, kind="stable")
                keep.extend(idx[order][: self.pop_size - len(keep)].tolist())
                break
        self._pop, self._F = allX[keep], allF[keep]
        self._children = None

    def front(self) -> Tuple[np.ndarray, np.ndarray]:
        """First (non-dominated) front ``(X, F)`` of the current population."""
        if self._pop is None or self._F is None:
            raise RuntimeError("front() before initialize()/tell()")
        first = fast_non_dominated_sort(self._F)[0]
        return self._pop[first], self._F[first]

    @property
    def population(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current population ``(X, F)`` — all ranks, not just the front.

        The driver's ``_pick_k`` tops up from the later non-dominated ranks
        here when the first front has fewer than ``k`` finite points.
        """
        if self._pop is None or self._F is None:
            raise RuntimeError("population before initialize()/tell()")
        return self._pop, self._F

    # -- main loop --------------------------------------------------------
    def minimize(
        self,
        objectives: Callable[[np.ndarray], np.ndarray],
        x0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evolve toward the Pareto front of a batch objective.

        Parameters
        ----------
        objectives:
            Vectorized ``(n, dim) -> (n, γ)`` function, all objectives
            minimized.  Rows may contain ``inf`` for infeasible points.
        x0:
            Optional seed individuals injected into the initial population.

        Returns
        -------
        ``(X, F)`` — decision vectors and objective rows of the final
        population's first (non-dominated) front.
        """
        pop = self.initialize(x0)
        self.tell(objectives(pop))
        for _ in range(self.generations):
            self.tell(objectives(self.ask()))
        return self.front()
