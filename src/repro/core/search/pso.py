"""Particle Swarm Optimization over the unit hypercube.

The paper's search phase generates large numbers of cheap EI evaluations and
"uses global, evolutionary algorithms such as the Particle Swarm Optimization
(PSO) algorithm to optimize the EI".  This is the standard inertia-weight PSO
of Kennedy & Eberhart with reflecting bounds, specialized to maximize a
vectorized objective on ``[0, 1]^d``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["ParticleSwarm"]


class ParticleSwarm:
    """Inertia-weight PSO maximizer on ``[0, 1]^dim``.

    Parameters
    ----------
    dim:
        Search dimensionality.
    n_particles:
        Swarm size.
    iterations:
        Number of velocity/position updates.
    inertia, cognitive, social:
        Classic PSO coefficients (ω, c1, c2).  Inertia decays linearly to
        0.4·ω over the run, shifting from exploration to exploitation.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        dim: int,
        n_particles: int = 40,
        iterations: int = 30,
        inertia: float = 0.72,
        cognitive: float = 1.49,
        social: float = 1.49,
        seed: Optional[int] = None,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self.n_particles = max(2, int(n_particles))
        self.iterations = max(1, int(iterations))
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.rng = np.random.default_rng(seed)

    def maximize(
        self,
        objective: Callable[[np.ndarray], np.ndarray],
        x0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, float]:
        """Maximize a vectorized objective ``(n, dim) -> (n,)``.

        Parameters
        ----------
        objective:
            Batch objective; ``-inf`` values mark infeasible points.
        x0:
            Optional ``(k, dim)`` seed positions injected into the initial
            swarm (e.g. the incumbent or previous optima).

        Returns
        -------
        ``(x_best, f_best)`` — the best position found and its value.
        """
        n, d = self.n_particles, self.dim
        pos = self.rng.random((n, d))
        if x0 is not None:
            x0 = np.atleast_2d(np.asarray(x0, dtype=float))
            k = min(x0.shape[0], n)
            pos[:k] = np.clip(x0[:k], 0.0, 1.0)
        vel = self.rng.uniform(-0.1, 0.1, (n, d))

        fit = np.asarray(objective(pos), dtype=float)
        pbest, pbest_f = pos.copy(), fit.copy()
        g = int(np.argmax(pbest_f))
        gbest, gbest_f = pbest[g].copy(), float(pbest_f[g])

        for it in range(self.iterations):
            w = self.inertia * (1.0 - 0.6 * it / max(1, self.iterations - 1))
            r1 = self.rng.random((n, d))
            r2 = self.rng.random((n, d))
            vel = (
                w * vel
                + self.cognitive * r1 * (pbest - pos)
                + self.social * r2 * (gbest[None, :] - pos)
            )
            np.clip(vel, -0.5, 0.5, out=vel)
            pos = pos + vel
            # reflecting bounds keep particles inside the cube
            over, under = pos > 1.0, pos < 0.0
            pos[over] = 2.0 - pos[over]
            pos[under] = -pos[under]
            np.clip(pos, 0.0, 1.0, out=pos)
            vel[over | under] *= -0.5

            fit = np.asarray(objective(pos), dtype=float)
            improved = fit > pbest_f
            pbest[improved] = pos[improved]
            pbest_f[improved] = fit[improved]
            g = int(np.argmax(pbest_f))
            if pbest_f[g] > gbest_f:
                gbest, gbest_f = pbest[g].copy(), float(pbest_f[g])
        self._pbest, self._pbest_f = pbest, pbest_f
        return gbest, gbest_f

    def top_batch(self, q: int, min_dist: float = 0.05) -> np.ndarray:
        """Up to ``q`` diverse high-scoring positions from the last run.

        Greedily picks personal bests in descending score, skipping points
        within ``min_dist`` (Euclidean, normalized space) of an already
        selected one — the batch-proposal strategy behind concurrent
        function evaluations (the paper's Sec. 4.2 notes GPTune "supports
        calling multiple function evaluations concurrently").

        Must be called after :meth:`maximize`.
        """
        if not hasattr(self, "_pbest"):
            raise RuntimeError("top_batch() before maximize()")
        order = np.argsort(-self._pbest_f, kind="stable")
        picked: list = []
        for i in order:
            if not np.isfinite(self._pbest_f[i]):
                continue
            x = self._pbest[i]
            if all(np.linalg.norm(x - p) >= min_dist for p in picked):
                picked.append(x.copy())
            if len(picked) >= q:
                break
        if not picked:  # everything infeasible/-inf: return the global best
            picked = [self._pbest[order[0]].copy()]
        return np.vstack(picked)
