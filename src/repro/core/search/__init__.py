"""Search-phase optimizers: PSO for single-objective EI (Sec. 3.1) and
NSGA-II for multi-objective candidate selection (Sec. 3.2)."""

from .pso import ParticleSwarm
from .nsga2 import NSGA2, fast_non_dominated_sort, crowding_distance

__all__ = ["ParticleSwarm", "NSGA2", "fast_non_dominated_sort", "crowding_distance"]
