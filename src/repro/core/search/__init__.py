"""Search-phase optimizers: PSO for single-objective EI (Sec. 3.1), its
cross-task lockstep variant, NSGA-II for multi-objective candidate
selection (Sec. 3.2), and pending-point penalties for the asynchronous
streaming search."""

from .pso import ParticleSwarm
from .pso_batched import BatchedParticleSwarm
from .nsga2 import NSGA2, fast_non_dominated_sort, crowding_distance
from .penalty import PenalizedAcquisition, constant_liar, local_penalty

__all__ = [
    "ParticleSwarm",
    "BatchedParticleSwarm",
    "NSGA2",
    "PenalizedAcquisition",
    "constant_liar",
    "fast_non_dominated_sort",
    "crowding_distance",
    "local_penalty",
]
