"""Search-phase optimizers: PSO for single-objective EI (Sec. 3.1), its
cross-task lockstep variant, and NSGA-II for multi-objective candidate
selection (Sec. 3.2)."""

from .pso import ParticleSwarm
from .pso_batched import BatchedParticleSwarm
from .nsga2 import NSGA2, fast_non_dominated_sort, crowding_distance

__all__ = [
    "ParticleSwarm",
    "BatchedParticleSwarm",
    "NSGA2",
    "fast_non_dominated_sort",
    "crowding_distance",
]
