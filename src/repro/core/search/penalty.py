"""Pending-point penalties for asynchronous proposal search.

When evaluations stream through the async engine, the search phase proposes
against a posterior that has not yet absorbed the in-flight configurations.
Left alone, EI would keep proposing the same promising point until its
evaluation lands.  Two standard batch-BO devices prevent that:

* **Local penalization** (:func:`local_penalty`,
  :class:`PenalizedAcquisition`) — multiply the acquisition by
  ``∏_j min(‖x − p_j‖ / r, 1)`` over pending points ``p_j``.  The factor is
  0 at a pending point, grows linearly to 1 at distance ``r``, and is
  exactly 1 beyond it, so (for a non-negative acquisition like EI) the
  penalized value is ≤ the unpenalized one everywhere, strictly lower
  inside the penalization radius, and *identical* outside it.  Factors are
  sorted before multiplying, so the result is invariant to pending-set
  ordering down to the last bit (floating-point products are not otherwise
  associative).  These four properties are checked by hypothesis in
  ``tests/test_property_based.py``.
* **Constant liar** (:func:`constant_liar`) — extend a *copy* of the fitted
  multitask posterior with fabricated observations ("lies") at the pending
  points via the O(N²·n_new) block-Cholesky update
  (:meth:`repro.core.lcm.LCM.extend`).  The posterior variance collapses at
  pending points, steering EI away while keeping cross-task correlations;
  the lie value used by the driver is the pending task's incumbent (the
  "CL-min" variant, pessimistic about in-flight points).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Optional, Sequence

import numpy as np

__all__ = [
    "PenalizedAcquisition",
    "constant_liar",
    "local_penalty",
    "penalize_lcb",
]


def local_penalty(Xunit: np.ndarray, pending: Any, radius: float) -> np.ndarray:
    """Multiplicative local-penalization factor in ``[0, 1]`` per candidate.

    Parameters
    ----------
    Xunit:
        Candidate points ``(n, dim)`` (or a single point) on the unit cube.
    pending:
        Pending points ``(m, dim)``; empty → factor 1 everywhere.
    radius:
        Penalization radius ``r > 0`` in unit-cube Euclidean distance.

    Returns ``∏_j min(‖x − p_j‖ / r, 1)`` for each candidate, with the
    per-pending factors sorted before the product so the result is exactly
    invariant to the ordering of ``pending``.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    X = np.atleast_2d(np.asarray(Xunit, dtype=float))
    P = np.asarray(pending, dtype=float)
    if P.size == 0:
        return np.ones(X.shape[0])
    P = np.atleast_2d(P)
    d = np.sqrt(np.sum((X[:, None, :] - P[None, :, :]) ** 2, axis=2))
    factors = np.minimum(d / float(radius), 1.0)
    factors.sort(axis=1)  # canonical order: bit-exact permutation invariance
    return np.prod(factors, axis=1)


class PenalizedAcquisition:
    """Wrap an acquisition with the local pending-point penalty.

    The base acquisition must be maximized and non-negative on feasible
    points (EI is); infeasible sentinels (``-inf``) pass through unscaled so
    ``-inf * 0 = nan`` can never leak into the optimizer.
    """

    def __init__(
        self,
        acquisition: Callable[[np.ndarray], np.ndarray],
        pending: Any,
        radius: float,
    ):
        self.acquisition = acquisition
        self.pending = np.atleast_2d(np.asarray(pending, dtype=float)) \
            if np.asarray(pending).size else np.empty((0, 0))
        self.radius = float(radius)

    def __call__(self, Xunit: np.ndarray) -> np.ndarray:
        values = np.asarray(self.acquisition(Xunit), dtype=float)
        if self.pending.size == 0:
            return values
        pen = local_penalty(Xunit, self.pending, self.radius)
        mask = np.isfinite(values) & (values > 0)
        out = values.copy()
        out[mask] = values[mask] * pen[mask]  # masked: -inf * 0 never happens
        return out


def penalize_lcb(
    lcb: np.ndarray,
    Xunit: np.ndarray,
    pending: Any,
    radius: float,
    incumbent: float,
) -> np.ndarray:
    """Apply the local pending-point penalty to a *minimized* LCB surface.

    :class:`PenalizedAcquisition` multiplies a maximized, non-negative
    acquisition (EI) by the :func:`local_penalty` factor — that device is
    meaningless for a lower confidence bound, which is minimized and signed.
    The equivalent transform shrinks the *predicted improvement* over the
    incumbent instead: where ``lcb < incumbent`` the apparent gain
    ``incumbent - lcb`` is scaled by the penalty factor, so a candidate
    sitting on a pending point (factor 0) looks exactly as good as the
    incumbent and no better, while candidates outside the penalization
    radius (factor 1) are bit-identical to the unpenalized surface.  Values
    at or above the incumbent pass through untouched, as do non-finite
    sentinels.

    Parameters
    ----------
    lcb:
        Lower-confidence-bound values ``(n,)`` for one objective, smaller
        is better (already in the surrogate's transformed units).
    Xunit:
        The candidates ``(n, dim)`` the values were computed at.
    pending:
        Pending points ``(m, dim)`` for the same task; empty → no-op.
    radius:
        Penalization radius (see :func:`local_penalty`).
    incumbent:
        The task's best observed value *for this objective* in the same
        transformed units; non-finite incumbents disable the penalty (no
        meaningful improvement baseline exists yet).
    """
    values = np.asarray(lcb, dtype=float)
    P = np.asarray(pending, dtype=float)
    if P.size == 0 or not np.isfinite(incumbent):
        return values
    pen = local_penalty(Xunit, P, radius)
    out = values.copy()
    mask = np.isfinite(values) & (values < incumbent)
    out[mask] = incumbent - (incumbent - values[mask]) * pen[mask]
    return out


def constant_liar(
    model: Any,
    Xpending_unit: np.ndarray,
    task_idx: Sequence[int],
    lies: np.ndarray,
) -> Optional[Any]:
    """A deep-copied surrogate pretending the pending points were observed.

    Parameters
    ----------
    model:
        A fitted surrogate with an ``extend(X, y, tidx)`` posterior update
        (the :class:`~repro.core.lcm.LCM`); the original is never mutated.
    Xpending_unit:
        Pending points ``(m, dim)`` on the unit cube.
    task_idx:
        Task index per pending point.
    lies:
        Fabricated observation per pending point, *in the surrogate's
        transformed units* (the driver passes each task's incumbent).

    Returns the extended copy, or ``None`` when the model cannot be copied
    or extended — the caller falls back to local penalization.
    """
    X = np.atleast_2d(np.asarray(Xpending_unit, dtype=float))
    if X.size == 0:
        return model
    try:
        liar = copy.deepcopy(model)
        liar.extend(
            X,
            np.asarray(lies, dtype=float).ravel(),
            np.asarray(task_idx, dtype=int).ravel(),
        )
        return liar
    except Exception:
        return None
