"""History database: archive and reuse tuning data across executions.

One of GPTune's stated goals (Sec. 1, goal 3) is "archiving and reusing
tuning data from multiple executions to allow tuning to improve over time".
:class:`HistoryDB` is a small JSON-file database keyed by problem name.  A
:class:`~repro.core.mla.GPTune` instance given a database will

* load archived evaluations whose task matches one of its tasks (these count
  as free initial samples — the modeling phase starts from them), and
* append every new evaluation, so subsequent runs start warmer.

The on-disk format is a single JSON object ``{problem_name: [records]}`` with
records ``{"task": {...}, "x": {...}, "y": [floats]}``, matching
:meth:`repro.core.data.TuningData.to_records`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Sequence

from ..runtime.resilience import atomic_write_json

__all__ = ["HistoryDB"]


class HistoryDB:
    """JSON-backed archive of function evaluations.

    Parameters
    ----------
    path:
        File path; created on first save.  The file is written atomically
        (temp file + rename) so a crash cannot corrupt the archive.  A
        truncated/corrupted file found at load time raises a ``ValueError``
        naming the path, after preserving the bad bytes in a ``.corrupt``
        sidecar for post-mortem.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._store: Dict[str, List[Dict[str, Any]]] = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                text = fh.read()
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as e:
                backup = self.path + ".corrupt"
                with open(backup, "w", encoding="utf-8") as fh:
                    fh.write(text)
                raise ValueError(
                    f"{self.path}: corrupted history database ({e}); "
                    f"bad file preserved at {backup}"
                ) from e
            if not isinstance(raw, dict):
                raise ValueError(f"{self.path}: malformed history database")
            self._store = {str(k): list(v) for k, v in raw.items()}

    # -- queries -----------------------------------------------------------
    def problems(self) -> List[str]:
        """Names of problems with archived data."""
        return sorted(self._store)

    def records(self, problem: str) -> List[Dict[str, Any]]:
        """All archived records for one problem (copy)."""
        return [dict(r) for r in self._store.get(problem, [])]

    def count(self, problem: str) -> int:
        """Number of archived evaluations for one problem."""
        return len(self._store.get(problem, []))

    # -- updates ---------------------------------------------------------
    def append(self, problem: str, records: Sequence[Mapping[str, Any]]) -> None:
        """Append records and persist immediately."""
        bucket = self._store.setdefault(problem, [])
        for rec in records:
            if not {"task", "x", "y"} <= set(rec):
                raise ValueError(f"malformed record {rec!r}")
            bucket.append({"task": dict(rec["task"]), "x": dict(rec["x"]), "y": list(rec["y"])})
        self._flush()

    def clear(self, problem: str) -> None:
        """Drop all records for one problem."""
        self._store.pop(problem, None)
        self._flush()

    def _flush(self) -> None:
        atomic_write_json(self.path, self._store)
