"""History database: archive and reuse tuning data across executions.

One of GPTune's stated goals (Sec. 1, goal 3) is "archiving and reusing
tuning data from multiple executions to allow tuning to improve over time".
:class:`HistoryDB` is the archive handle a
:class:`~repro.core.mla.GPTune` instance takes: it

* loads archived evaluations whose task matches one of its tasks (these count
  as free initial samples — the modeling phase starts from them), and
* appends every new evaluation, so subsequent runs start warmer.

Since the shared tuning-history service landed, :class:`HistoryDB` is a thin
back-compat shim over :class:`~repro.service.store.ShardedStore`: records
live in per-problem append-only JSONL shards under ``<path>.d/`` with
advisory file locking, so an append writes only the new lines (the original
implementation rewrote the entire JSON store on every save) and concurrent
campaigns sharing one database no longer lose each other's records.

The original on-disk format — a single JSON object ``{problem_name:
[records]}`` with records ``{"task": {...}, "x": {...}, "y": [floats]}``
matching :meth:`repro.core.data.TuningData.to_records` — remains the
**import path**: a legacy JSON file found at ``path`` is absorbed into the
shards on open (idempotently — re-opening does not duplicate it), and
:meth:`export_json` writes the consolidated single-file view back out for
interchange.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..runtime.resilience import atomic_write_json
from ..service.store import ShardedStore, canonical_payload

__all__ = ["HistoryDB"]


class HistoryDB:
    """Shard-backed archive of function evaluations.

    Parameters
    ----------
    path:
        Legacy single-JSON location; the shards live beside it in
        ``<path>.d/`` (created on first use).  A JSON file present at
        ``path`` is imported once.  A truncated/corrupted file found at load
        time raises a ``ValueError`` naming the path, after preserving the
        bad bytes in a ``.corrupt`` sidecar for post-mortem.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.store = ShardedStore(self.path + ".d")
        if os.path.exists(self.path):
            self._import_legacy()

    def _import_legacy(self) -> None:
        """Absorb the single-JSON store into the shards, idempotently.

        Each legacy record gets a deterministic rid derived from its file
        position and payload, so importing the same file again (every open
        does) deduplicates instead of doubling the archive.
        """
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as e:
            backup = self.path + ".corrupt"
            with open(backup, "w", encoding="utf-8") as fh:
                fh.write(text)
            raise ValueError(
                f"{self.path}: corrupted history database ({e}); "
                f"bad file preserved at {backup}"
            ) from e
        if not isinstance(raw, dict):
            raise ValueError(f"{self.path}: malformed history database")
        for problem, records in raw.items():
            rows = []
            for i, rec in enumerate(records):
                if not {"task", "x", "y"} <= set(rec):
                    raise ValueError(f"malformed record {rec!r}")
                digest = hashlib.sha1(
                    f"legacy:{problem}:{i}:{canonical_payload(rec)}".encode("utf-8")
                ).hexdigest()
                rows.append({**rec, "rid": digest})
            self.store.append(str(problem), rows)

    # -- queries -----------------------------------------------------------
    def problems(self) -> List[str]:
        """Names of problems with archived data."""
        return [p for p in self.store.problems() if self.store.count(p) > 0]

    def records(self, problem: str) -> List[Dict[str, Any]]:
        """All archived records for one problem (copies, legacy shape)."""
        return self.store.records(problem)

    def count(self, problem: str) -> int:
        """Number of archived evaluations for one problem."""
        return self.store.count(problem)

    # -- updates ---------------------------------------------------------
    def append(self, problem: str, records: Sequence[Mapping[str, Any]]) -> None:
        """Append records and persist immediately (appends only the new lines)."""
        self.store.append(problem, records)

    def clear(self, problem: str) -> None:
        """Drop all records for one problem."""
        self.store.clear(problem)

    def compact(self, problem: Optional[str] = None) -> None:
        """Compact one problem's shard (or all): drop torn/duplicate lines."""
        for name in [problem] if problem is not None else self.store.problems():
            self.store.compact(name)

    def export_json(self, path: Optional[str] = None) -> str:
        """Write the legacy single-JSON view of the whole archive.

        Defaults to the database's own ``path``; the write is atomic
        (temp file + rename).  Returns the path written.
        """
        out = str(path) if path is not None else self.path
        atomic_write_json(out, {p: self.records(p) for p in self.problems()})
        return out
