"""Covariance kernels.

The LCM (Sec. 3.1, Eq. 3) assumes each latent function ``u_q`` has a Gaussian
(squared-exponential) kernel with automatic-relevance-determination (ARD)
lengthscales, one per tuning-parameter dimension:

.. math::

    k_q(x, x') = \\sigma_q^2 \\exp\\Bigl(-\\sum_{j=1}^{\\beta}
        \\frac{(x_j - x'_j)^2}{2 (l_j^q)^2}\\Bigr)

Per the paper we fix ``σ_q = 1`` (the task coefficients ``a_{i,q}`` absorb the
scale).  Everything operates on normalized ``[0,1]^β`` inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "pairwise_sq_diffs",
    "gaussian_kernel",
    "gaussian_kernel_batch",
    "gaussian_kernel_with_grad",
]


def pairwise_sq_diffs(X1: np.ndarray, X2: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-dimension squared differences ``D[n, m, j] = (X1[n,j] - X2[m,j])^2``.

    Parameters
    ----------
    X1:
        ``(N1, β)`` input matrix.
    X2:
        ``(N2, β)`` input matrix; defaults to ``X1``.

    Returns
    -------
    ``(N1, N2, β)`` array.  Cubic in memory; intended for the moderate sample
    counts of few-evaluation autotuning (N in the hundreds).
    """
    X1 = np.atleast_2d(np.asarray(X1, dtype=float))
    X2 = X1 if X2 is None else np.atleast_2d(np.asarray(X2, dtype=float))
    diff = X1[:, None, :] - X2[None, :, :]
    return diff * diff


def gaussian_kernel(
    sq_diffs: np.ndarray,
    lengthscales: np.ndarray,
    variance: float = 1.0,
) -> np.ndarray:
    """Evaluate the ARD squared-exponential kernel from precomputed sq-diffs.

    Parameters
    ----------
    sq_diffs:
        Output of :func:`pairwise_sq_diffs`, shape ``(N1, N2, β)``.
    lengthscales:
        ``(β,)`` positive ARD lengthscales ``l_j``.
    variance:
        σ² multiplier (fixed to 1 inside the LCM).
    """
    ls = np.asarray(lengthscales, dtype=float)
    if np.any(ls <= 0):
        raise ValueError("lengthscales must be positive")
    expo = sq_diffs / (2.0 * ls * ls)
    return variance * np.exp(-expo.sum(axis=2))


def gaussian_kernel_batch(
    sq_diffs: np.ndarray,
    lengthscales: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """All ``Q`` ARD kernels at once from one BLAS contraction.

    The LCM evaluates ``Q`` Gaussian kernels over the same sample set per
    likelihood call; evaluating them one by one sums the ``β`` exponent terms
    with ``Q`` separate reductions.  Here the exponents for every latent come
    out of a single ``(Q, β) @ (β, N1·N2)`` matrix product, followed by one
    in-place ``exp``.

    Parameters
    ----------
    sq_diffs:
        Output of :func:`pairwise_sq_diffs`, shape ``(N1, N2, β)``.
    lengthscales:
        ``(Q, β)`` positive ARD lengthscales, one row per latent.
    out:
        Optional preallocated ``(Q, N1, N2)`` destination (the likelihood
        optimizer reuses one across its L-BFGS iterations).

    Returns
    -------
    ``(Q, N1, N2)`` array with ``out[q] = k_q`` evaluated at σ² = 1.
    """
    ls = np.atleast_2d(np.asarray(lengthscales, dtype=float))
    if np.any(ls <= 0):
        raise ValueError("lengthscales must be positive")
    n1, n2, beta = sq_diffs.shape
    if ls.shape[1] != beta:
        raise ValueError(f"lengthscales have {ls.shape[1]} dims, sq_diffs {beta}")
    q = ls.shape[0]
    if out is None:
        out = np.empty((q, n1, n2))
    flat = out.reshape(q, n1 * n2)
    np.matmul(0.5 / (ls * ls), sq_diffs.reshape(n1 * n2, beta).T, out=flat)
    np.negative(flat, out=flat)
    np.exp(flat, out=flat)
    return out


def gaussian_kernel_with_grad(
    sq_diffs: np.ndarray,
    lengthscales: np.ndarray,
    variance: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Kernel matrix and its gradients w.r.t. ``log l_j``.

    Materializes the full ``(β, N1, N2)`` gradient stack; the LCM's
    vectorized likelihood avoids it by contracting against ``sq_diffs``
    directly.  Retained for the single-task GP and as the LCM's reference
    implementation (:meth:`repro.core.lcm.LCM._nll_and_grad_reference`).

    Returns
    -------
    K:
        ``(N1, N2)`` kernel matrix.
    dK_dlogl:
        ``(β, N1, N2)`` with ``dK_dlogl[j] = ∂K/∂(log l_j)
        = K * (x_j - x'_j)^2 / l_j^2`` — the log-parameterization used by the
        L-BFGS hyperparameter optimizer.
    """
    ls = np.asarray(lengthscales, dtype=float)
    K = gaussian_kernel(sq_diffs, ls, variance)
    # ∂K/∂l_j = K * d_j² / l_j³ ; chain rule ∂/∂log l_j multiplies by l_j.
    grads = K[None, :, :] * np.moveaxis(sq_diffs, 2, 0) / (ls * ls)[:, None, None]
    return K, grads
