"""Sparse inducing-point approximation of the LCM posterior.

The exact :class:`~repro.core.lcm.LCM` costs O(N³) per fit and O(N) memory
per prediction column; ``model.fit`` is ~98% of the modeling phase once a
campaign (or a crowd-tuning archive feeding it) accumulates a few hundred
observations.  :class:`SparseLCM` breaks that wall with the classic
**subset-of-regressors / deterministic-training-conditional (SoR/DTC)**
construction over a shared inducing set of ``M ≪ N`` stacked rows:

* the inducing rows ``Z`` (configuration + task id) are picked from the
  data by deterministic greedy max-min selection
  (:func:`~repro.core.model.inducing.select_inducing`);
* hyperparameters θ (identical layout to the exact model's
  :class:`~repro.core.lcm.LCMParams`) are estimated by an **inner exact
  LCM fit on the inducing subset** — O(M³), reusing the vectorized
  likelihood, multi-start machinery, warm starts and executor parallelism
  of the exact path unchanged;
* the posterior over all N observations uses the Nyström approximation
  ``Σ ≈ K_nm K_mm⁻¹ K_mn + Λ`` with ``Λ = diag(d_{t_n})``, giving

  .. math::

      A = K_{mm} + K_{nm}^T \\Lambda^{-1} K_{nm}, \\qquad
      \\mu_* = K_{*m} A^{-1} K_{nm}^T \\Lambda^{-1} y,

  and the DTC predictive variance
  ``σ²_* = prior − ‖L_m⁻¹ k_*‖² + ‖L_A⁻¹ k_*‖²`` — an **O(N·M²) fit** (one
  GEMM to build ``A``) and **O(M²) per prediction point**, independent of N.

All cross-covariances go through one batched-kernel contraction
(:func:`~repro.core.kernels.gaussian_kernel_batch`), mirroring the exact
model's hot path.  The class is interface-compatible with :class:`LCM`
where the MLA driver cares: ``fit/extend/predict/predict_tasks``, the
``params``/``theta``/``log_likelihood_`` attributes (θ is transferable
between exact and sparse fits, so warm starts survive backend
escalation), deep-copyability for the constant-liar pending penalty, and
pickling for checkpoints.

:meth:`extend` implements streaming absorption for the async engine with
the inducing set held fixed: appending ``n_new`` rows is a rank-M update
``A += K_new,m^T Λ_new^{-1} K_new,m`` plus one M×M refactorization —
O(n_new·M² + M³), no L-BFGS — the sparse analogue of
:meth:`LCM.extend`'s block-Cholesky update.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as sla

from ..kernels import gaussian_kernel_batch, pairwise_sq_diffs
from ..lcm import LCM, LCMParams
from ...observability.spans import maybe_span
from .inducing import select_inducing

__all__ = ["SparseLCM"]


class SparseLCM:
    """Multitask GP surrogate: shared-inducing-set Nyström/SoR LCM.

    Parameters mirror :class:`~repro.core.lcm.LCM` (the inner subset fit
    receives them unchanged) plus:

    n_inducing:
        M — inducing-set size cap; fits on ``N ≤ M`` observations collapse
        to the exact subset fit on all rows.

    Attributes
    ----------
    Z, z_index:
        The inducing rows ``(M, β)`` and their task ids ``(M,)``.
    log_likelihood_:
        The DTC log marginal likelihood of *all* N observations under the
        sparse posterior (not the inner subset fit's) — comparable across
        extends and usable by the driver's divergence check.
    """

    def __init__(
        self,
        n_tasks: int,
        n_dims: int,
        n_latent: Optional[int] = None,
        n_inducing: int = 128,
        jitter: float = 1e-8,
        n_start: int = 3,
        maxiter: int = 200,
        seed: Optional[int] = None,
        executor=None,
        restart_offset: int = 0,
    ):
        if n_tasks < 1 or n_dims < 1:
            raise ValueError("need n_tasks >= 1 and n_dims >= 1")
        if int(n_inducing) < 2:
            raise ValueError("need n_inducing >= 2")
        Q = min(n_tasks, 3) if n_latent is None else int(n_latent)
        if Q < 1 or Q > n_tasks:
            raise ValueError(f"need 1 <= Q <= δ, got Q={Q}, δ={n_tasks}")
        self.params = LCMParams(n_tasks, n_dims, Q)
        self.n_inducing = int(n_inducing)
        self.jitter = float(jitter)
        self.n_start = int(n_start)
        self.maxiter = int(maxiter)
        self.seed = seed
        self.executor = executor
        self.restart_offset = max(0, int(restart_offset))
        # fitted state
        self.X: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self.task_index: Optional[np.ndarray] = None
        self.theta: Optional[np.ndarray] = None
        self.Z: Optional[np.ndarray] = None
        self.z_index: Optional[np.ndarray] = None
        self._Lm: Optional[np.ndarray] = None  # chol(K_mm + jitter I)
        self._La: Optional[np.ndarray] = None  # chol(A)
        self._c: Optional[np.ndarray] = None  # A^{-1} K_nm^T Λ^{-1} y
        self._A: Optional[np.ndarray] = None
        self._rhs: Optional[np.ndarray] = None
        self._lam_floor = 0.0  # conditioning floor on Λ, set per fit
        self._yly = 0.0  # y^T Λ^{-1} y accumulator
        self._loglam = 0.0  # Σ log Λ accumulator
        self._logdet_mm = 0.0  # log|K_mm + jitter I|
        self.log_likelihood_: float = -np.inf
        self.jitter_used_: float = float(jitter)
        # caches (never pickled; rebuilt on demand)
        self._pred_cache: dict = {}
        self._batch_cache: dict = {}

    def __getstate__(self):
        # executors hold process-local pools; prediction caches are droppable
        state = self.__dict__.copy()
        state["executor"] = None
        state["_pred_cache"] = {}
        state["_batch_cache"] = {}
        return state

    # -- covariance assembly ------------------------------------------------
    def _cov(
        self,
        Xa: np.ndarray,
        ta: np.ndarray,
        Xb: np.ndarray,
        tb: np.ndarray,
    ) -> np.ndarray:
        """Noise-free LCM covariance between two stacked sample sets.

        Same construction as :meth:`LCM._cov_block`; per-sample noise
        ``d_i`` is applied by the caller (it enters Λ, never the kernels).
        """
        ls, a, bw, _ = self.params.unpack(self.theta)
        same = ta[:, None] == tb[None, :]
        Kall = gaussian_kernel_batch(pairwise_sq_diffs(Xa, Xb), ls)
        out = np.zeros(same.shape)
        for q in range(self.params.Q):
            Aq = np.outer(a[ta, q], a[tb, q])
            Aq += np.where(same, bw[ta, q][:, None], 0.0)
            out += Aq * Kall[q]
        return out

    def _chol_escalate(self, A: np.ndarray) -> Tuple[np.ndarray, float]:
        """Cholesky with escalating — not compounding — diagonal jitter."""
        di = np.diag_indices(A.shape[0])
        base = A[di].copy()
        j = 0.0
        while True:
            try:
                L = sla.cholesky(A, lower=True)
                return L, j
            except sla.LinAlgError:
                j = max(j, self.jitter, 1e-10) * 10.0
                if j > 1.0:
                    raise
                A[di] = base + j

    # -- public API ---------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_index: Sequence[int],
        theta0: Optional[np.ndarray] = None,
    ) -> "SparseLCM":
        """Select inducing rows, fit θ on the subset, assemble the posterior.

        Arguments are exactly :meth:`LCM.fit`'s; ``theta0`` warm-starts the
        inner subset fit (a θ from a previous exact *or* sparse fit — the
        flat layout is shared).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        tidx = np.asarray(task_index, dtype=int).ravel()
        if not (X.shape[0] == y.shape[0] == tidx.shape[0]):
            raise ValueError("X, y and task_index row counts differ")
        if X.shape[0] == 0:
            raise ValueError("no observations")
        if tidx.min() < 0 or tidx.max() >= self.params.delta:
            raise ValueError("task_index out of range")

        # Λ floor: the inner subset fit often drives the per-task noise d_i
        # to ~0 (M points are easy to interpolate), which makes Λ⁻¹ — and
        # with it A = K_mm + K_nmᵀΛ⁻¹K_nm — blow up and the posterior
        # solve lose most of its digits.  Flooring Λ at a small fraction of
        # the observed variance costs negligible bias and keeps A's
        # condition number bounded.
        self._lam_floor = 1e-3 * float(np.var(y)) if y.shape[0] > 1 else 0.0

        sel = select_inducing(X, tidx, min(self.n_inducing, X.shape[0]))
        inner = LCM(
            n_tasks=self.params.delta,
            n_dims=self.params.beta,
            n_latent=self.params.Q,
            jitter=self.jitter,
            n_start=self.n_start,
            maxiter=self.maxiter,
            seed=self.seed,
            executor=self.executor,
            restart_offset=self.restart_offset,
        )
        inner.fit(X[sel], y[sel], tidx[sel], theta0=theta0)

        self.theta = inner.theta
        self.X, self.y, self.task_index = X, y, tidx
        self.Z, self.z_index = X[sel].copy(), tidx[sel].copy()
        self._pred_cache = {}
        self._batch_cache = {}
        with maybe_span(
            "model.sparse_assemble", n=int(X.shape[0]), m=int(sel.shape[0])
        ):
            self._assemble()
        return self

    def _assemble(self) -> None:
        """Build the SoR posterior factors from scratch (O(N·M²))."""
        _, _, _, dn = self.params.unpack(self.theta)
        M = self.Z.shape[0]
        Kmm = self._cov(self.Z, self.z_index, self.Z, self.z_index)
        Kmm[np.diag_indices(M)] += self.jitter
        self._Lm, jm = self._chol_escalate(Kmm)
        self.jitter_used_ = max(self.jitter, jm)
        self._logdet_mm = 2.0 * float(np.log(np.diag(self._Lm)).sum())

        Knm = self._cov(self.X, self.task_index, self.Z, self.z_index)
        lam = np.maximum(dn[self.task_index], self._lam_floor) + self.jitter_used_
        self._A = Kmm + Knm.T @ (Knm / lam[:, None])
        self._rhs = Knm.T @ (self.y / lam)
        self._yly = float(self.y @ (self.y / lam))
        self._loglam = float(np.log(lam).sum())
        self._factorize()

    def _factorize(self) -> None:
        """Refactorize A, refresh the weight vector and the DTC likelihood."""
        self._La, _ = self._chol_escalate(self._A)
        self._c = sla.cho_solve((self._La, True), self._rhs)
        N = self.y.shape[0]
        quad = self._yly - float(self._rhs @ self._c)
        logdet = (
            2.0 * float(np.log(np.diag(self._La)).sum())
            - self._logdet_mm
            + self._loglam
        )
        self.log_likelihood_ = -0.5 * quad - 0.5 * logdet - 0.5 * N * np.log(2 * np.pi)

    def extend(
        self, Xnew: np.ndarray, ynew: np.ndarray, tidx_new: Sequence[int]
    ) -> "SparseLCM":
        """Absorb new observations with θ and the inducing set held fixed.

        A rank-M information update: ``A += K_new,m^T Λ_new^{-1} K_new,m``,
        ``rhs += K_new,m^T Λ_new^{-1} y_new``, then one M×M refactorization
        — O(n_new·M² + M³), the streaming analogue of :meth:`LCM.extend`.
        """
        if self.theta is None or self._A is None:
            raise RuntimeError("extend() before fit()")
        Xnew = np.atleast_2d(np.asarray(Xnew, dtype=float))
        ynew = np.asarray(ynew, dtype=float).ravel()
        tnew = np.asarray(tidx_new, dtype=int).ravel()
        if not (Xnew.shape[0] == ynew.shape[0] == tnew.shape[0]):
            raise ValueError("Xnew, ynew and tidx_new row counts differ")
        if Xnew.shape[0] == 0:
            return self
        if Xnew.shape[1] != self.X.shape[1]:
            raise ValueError("Xnew dimension differs from fitted inputs")
        if tnew.min() < 0 or tnew.max() >= self.params.delta:
            raise ValueError("task_index out of range")
        with maybe_span(
            "model.extend", n_old=int(self.X.shape[0]), n_new=int(Xnew.shape[0])
        ):
            _, _, _, dn = self.params.unpack(self.theta)
            Knew = self._cov(Xnew, tnew, self.Z, self.z_index)
            lam = np.maximum(dn[tnew], self._lam_floor) + self.jitter_used_
            self._A += Knew.T @ (Knew / lam[:, None])
            self._rhs += Knew.T @ (ynew / lam)
            self._yly += float(ynew @ (ynew / lam))
            self._loglam += float(np.log(lam).sum())
            self.X = np.vstack([self.X, Xnew])
            self.y = np.concatenate([self.y, ynew])
            self.task_index = np.concatenate([self.task_index, tnew])
            self._factorize()
            self._pred_cache = {}
            self._batch_cache = {}
        return self

    def _task_weights(self, task: int) -> Tuple[np.ndarray, np.ndarray, float]:
        """Cached ``(inv2ls, w (Q,M), prior)`` over the inducing rows.

        Mirror of :meth:`LCM._task_weights` with the inducing set standing
        in for the training set.
        """
        cached = self._pred_cache.get(task)
        if cached is None:
            ls, a, bw, _ = self.params.unpack(self.theta)
            inv2 = 0.5 / (ls * ls)
            w = (a[task][None, :] * a[self.z_index]).T.copy()  # (Q, M)
            w[:, self.z_index == task] += bw[task][:, None]
            prior = float(np.sum(a[task] ** 2 + bw[task]))
            cached = (inv2, w, prior)
            self._pred_cache[task] = cached
        return cached

    def _cross_kernels(self, flat: np.ndarray) -> np.ndarray:
        """``exp(−Σ_b sqd_b / 2ℓ²)`` base kernels ``(Q, n, M)`` vs inducing."""
        ls = self.params.unpack(self.theta)[0]
        inv2 = 0.5 / (ls * ls)
        sqd = pairwise_sq_diffs(flat, self.Z)
        n, M = flat.shape[0], self.Z.shape[0]
        E = np.matmul(inv2, sqd.reshape(n * M, self.params.beta).T)
        np.negative(E, out=E)
        np.exp(E, out=E)
        return E.reshape(self.params.Q, n, M)

    def predict(self, task: int, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """DTC posterior mean and variance for one task — O(M²) per point."""
        if self.theta is None or self._c is None:
            raise RuntimeError("predict() before fit()")
        task = int(task)
        if not 0 <= task < self.params.delta:
            raise ValueError("task out of range")
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        with maybe_span("model.predict", aggregate=True):
            _, w, prior = self._task_weights(task)
            E = self._cross_kernels(Xstar)
            Ksm = np.einsum("qnm,qm->nm", E, w)
            mu = Ksm @ self._c
            v1 = sla.solve_triangular(self._Lm, Ksm.T, lower=True)
            v2 = sla.solve_triangular(self._La, Ksm.T, lower=True)
            var = (
                prior
                - np.einsum("ij,ij->j", v1, v1)
                + np.einsum("ij,ij->j", v2, v2)
            )
        return mu, np.maximum(var, 0.0)

    def predict_tasks(
        self, tasks: Sequence[int], Xstar: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-task batched posterior, same contract as
        :meth:`LCM.predict_tasks` — one kernel evaluation against the M
        inducing rows serves every task (shared ``(N*, β)`` block or
        per-task ``(n_tasks, N*, β)`` blocks).
        """
        if self.theta is None or self._c is None:
            raise RuntimeError("predict_tasks() before fit()")
        task_ids = [int(t) for t in tasks]
        if not task_ids:
            raise ValueError("need at least one task")
        for t in task_ids:
            if not 0 <= t < self.params.delta:
                raise ValueError("task out of range")
        Xs = np.asarray(Xstar, dtype=float)
        if Xs.ndim == 2:
            per_task_blocks = False
        elif Xs.ndim == 3:
            per_task_blocks = True
            if Xs.shape[0] != len(task_ids):
                raise ValueError(
                    f"got {Xs.shape[0]} candidate blocks for {len(task_ids)} task(s)"
                )
        else:
            raise ValueError("Xstar must be (N*, beta) or (n_tasks, N*, beta)")
        T, ns, M = len(task_ids), Xs.shape[-2], self.Z.shape[0]
        flat = Xs.reshape(-1, Xs.shape[-1])
        with maybe_span("model.predict_tasks", aggregate=True):
            cached = self._batch_cache.get(tuple(task_ids))
            if cached is None:
                weights = [self._task_weights(t) for t in task_ids]
                W = np.stack([w for _, w, _ in weights])  # (T, Q, M)
                prior = np.array([p for _, _, p in weights])  # (T,)
                self._batch_cache[tuple(task_ids)] = (W, prior)
            else:
                W, prior = cached
            E = self._cross_kernels(flat)  # (Q, T*ns or ns, M)
            if per_task_blocks:
                Kstar = np.einsum(
                    "qtsm,tqm->tsm", E.reshape(self.params.Q, T, ns, M), W
                )
            else:
                Kstar = np.einsum("qsm,tqm->tsm", E, W)
            mu = Kstar @ self._c  # (T, ns)
            Kflat = Kstar.reshape(T * ns, M).T
            v1, info1 = sla.lapack.dtrtrs(self._Lm, Kflat, lower=1)
            v2, info2 = sla.lapack.dtrtrs(self._La, Kflat, lower=1)
            if info1 != 0 or info2 != 0:
                raise np.linalg.LinAlgError("triangular solve failed")
            var = (
                prior[:, None]
                - np.einsum("ij,ij->j", v1, v1).reshape(T, ns)
                + np.einsum("ij,ij->j", v2, v2).reshape(T, ns)
            )
        return mu, np.maximum(var, 0.0)

    def task_correlation(self) -> np.ndarray:
        """Fitted between-task correlation matrix (see :meth:`LCM.task_correlation`)."""
        if self.theta is None:
            raise RuntimeError("not fitted")
        _, a, bw, _ = self.params.unpack(self.theta)
        B = a @ a.T + np.diag(bw.sum(axis=1))
        dd = np.sqrt(np.clip(np.diag(B), 1e-300, None))
        return B / np.outer(dd, dd)
