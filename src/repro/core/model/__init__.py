"""Surrogate-backend subsystem: registry, selection policy, and backends.

See :mod:`repro.core.model.registry` for the backend contract and the
budget-aware ``auto`` escalation policy, :mod:`repro.core.model.sparse_lcm`
for the O(N·M²) inducing-point LCM, and docs/ALGORITHMS.md §7 for the math.
"""

from .gp_backend import PerTaskGP
from .inducing import max_min_indices, select_inducing
from .registry import (
    BackendSpec,
    available_backends,
    get_backend,
    register_backend,
    select_backend,
)
from .sparse_lcm import SparseLCM

__all__ = [
    "BackendSpec",
    "PerTaskGP",
    "SparseLCM",
    "available_backends",
    "get_backend",
    "max_min_indices",
    "register_backend",
    "select_backend",
    "select_inducing",
]
