"""Inducing-set selection for the sparse LCM backend.

The sparse posterior's accuracy hinges on the inducing rows covering the
observed configurations; its determinism contract (same seed → same
campaign, kill-resume replays exactly) requires the selection to be a pure
function of the data.  :func:`select_inducing` therefore uses **greedy
max-min (farthest-point) selection** over the normalized configurations —
no randomness, ties broken by the lowest index — stratified per task:

* each task receives a quota proportional to its observation count
  (largest-remainder rounding, every observed task gets at least one), so
  no task's posterior degenerates to the prior because all inducing rows
  landed elsewhere;
* within a task, selection starts from the point closest to the task's
  config centroid and repeatedly adds the point farthest (in Euclidean
  distance on the unit cube) from the already-selected set — the classic
  2-approximation of the k-center cover, which is exactly the property a
  Nyström basis wants.

The returned indices are sorted ascending, giving the inducing rows a
canonical order independent of selection history.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["max_min_indices", "select_inducing"]


def max_min_indices(X: np.ndarray, m: int) -> np.ndarray:
    """Greedy farthest-point indices into ``X`` (``(N, β)``), ``m`` of them.

    Deterministic: starts at the point nearest the centroid, ties always
    resolve to the lowest index (``argmin``/``argmax`` on equal values).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    m = int(m)
    if m >= n:
        return np.arange(n)
    if m < 1:
        raise ValueError("need m >= 1")
    center = X.mean(axis=0)
    first = int(np.argmin(np.einsum("ij,ij->i", X - center, X - center)))
    chosen = [first]
    mind = np.einsum("ij,ij->i", X - X[first], X - X[first])
    for _ in range(m - 1):
        nxt = int(np.argmax(mind))
        chosen.append(nxt)
        d = np.einsum("ij,ij->i", X - X[nxt], X - X[nxt])
        np.minimum(mind, d, out=mind)
    return np.asarray(sorted(chosen), dtype=int)


def select_inducing(X: np.ndarray, task_index: Sequence[int], m: int) -> np.ndarray:
    """Indices of ``m`` inducing rows from stacked samples ``(X, task_index)``.

    Quotas are proportional to per-task counts with largest-remainder
    rounding; every task with at least one observation keeps at least one
    inducing row.  Within each task the rows come from
    :func:`max_min_indices` on that task's configurations.  Returns sorted
    global row indices.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    tidx = np.asarray(task_index, dtype=int).ravel()
    n = X.shape[0]
    if tidx.shape[0] != n:
        raise ValueError("X and task_index row counts differ")
    m = int(m)
    if m >= n:
        return np.arange(n)
    if m < 1:
        raise ValueError("need m >= 1")
    tasks = np.unique(tidx)
    counts = {int(t): int(np.sum(tidx == t)) for t in tasks}
    if m < len(tasks):
        # fewer slots than tasks: keep the largest tasks' single rows
        tasks = sorted(counts, key=lambda t: (-counts[t], t))[:m]
        quotas = {t: 1 for t in tasks}
    else:
        raw = {t: m * counts[t] / n for t in counts}
        quotas = {t: max(1, int(raw[t])) for t in counts}
        # largest-remainder: hand leftover slots to the biggest fractions,
        # ties to the lower task id
        while sum(quotas.values()) < m:
            rem = sorted(
                ((raw[t] - quotas[t], -t) for t in counts if quotas[t] < counts[t]),
                reverse=True,
            )
            if not rem:
                break
            quotas[-rem[0][1]] += 1
        while sum(quotas.values()) > m:
            rem = sorted(
                ((raw[t] - quotas[t], -t) for t in counts if quotas[t] > 1)
            )
            quotas[-rem[0][1]] -= 1
    out = []
    for t in sorted(quotas):
        rows = np.nonzero(tidx == t)[0]
        local = max_min_indices(X[rows], min(quotas[t], rows.shape[0]))
        out.extend(int(rows[j]) for j in local)
    return np.asarray(sorted(out), dtype=int)
