"""Surrogate-backend registry and budget-aware selection policy.

The modeling phase used to hard-code the exact LCM.  This module turns the
surrogate into a pluggable **backend**: a named factory producing a model
with the driver's fit/predict contract —

* ``fit(X, y, task_index, theta0=None)`` on stacked normalized samples,
* ``predict(task, Xstar) -> (mu, var)``;
* optionally ``predict_tasks`` (enables the lockstep batched search),
  ``extend`` (enables refit-interval/async streaming absorption), a flat
  ``theta`` in the :class:`~repro.core.lcm.LCMParams` layout (enables warm
  starts and the surrogate cache), and ``log_likelihood_`` (the driver's
  divergence check).

Three backends ship registered:

``exact-lcm``
    The reference O(N³) :class:`~repro.core.lcm.LCM`; optionally routes
    its covariance factorizations through the simulated distributed
    Cholesky (``Options(chol_ranks=p)``, Sec. 4.3's ScaLAPACK level).
``sparse-lcm``
    The O(N·M²) inducing-point :class:`~repro.core.model.sparse_lcm.SparseLCM`.
``gp``
    Independent per-task GPs (:class:`~repro.core.model.gp_backend.PerTaskGP`)
    — the degradation rung as an explicit choice.

:func:`select_backend` implements the budget-aware policy:
``model_backend="auto"`` (the default) keeps today's exact path while the
observation count is at most ``sparse_threshold`` and **escalates to the
sparse backend** beyond it, so long campaigns and big-archive transfer
stay O(N·M²) without user intervention.  The shared θ layout makes the
escalation seamless: warm starts carry over from the last exact fit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "BackendSpec",
    "available_backends",
    "get_backend",
    "register_backend",
    "select_backend",
]


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """One registered surrogate backend.

    Attributes
    ----------
    name:
        Registry key (also the ``Options.model_backend`` value).
    factory:
        ``factory(n_tasks, n_dims, n_latent, n_start, seed, executor,
        options) -> model``; ``options`` is the campaign's
        :class:`~repro.core.options.Options` for backend-specific knobs.
    supports_theta:
        The model carries a flat θ in the shared :class:`LCMParams` layout
        — warm-startable across iterations *and* backends, and cacheable in
        the :class:`~repro.service.modelcache.SurrogateCache`.
    description:
        One-line summary for ``--help`` and docs.
    """

    name: str
    factory: Callable[..., Any]
    supports_theta: bool = False
    description: str = ""


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec, replace: bool = False) -> None:
    """Register a backend; re-registering a name requires ``replace=True``."""
    if spec.name == "auto":
        raise ValueError('"auto" is the selection policy, not a backend name')
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"backend {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec


def get_backend(name: str) -> BackendSpec:
    """The registered spec for ``name``; raises with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown model backend {name!r}; known: {known}") from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def select_backend(preference: str, n_obs: int, sparse_threshold: int) -> str:
    """Resolve ``Options.model_backend`` to a concrete backend name.

    ``"auto"`` escalates from ``"exact-lcm"`` to ``"sparse-lcm"`` once the
    stacked observation count exceeds ``sparse_threshold``; any other value
    is passed through after validation.
    """
    if preference == "auto":
        return "sparse-lcm" if int(n_obs) > int(sparse_threshold) else "exact-lcm"
    get_backend(preference)  # raises on unknown names
    return preference


# -- built-in backends ---------------------------------------------------------


def _make_exact(n_tasks, n_dims, n_latent, n_start, seed, executor, options):
    from ..lcm import LCM

    return LCM(
        n_tasks=n_tasks,
        n_dims=n_dims,
        n_latent=n_latent,
        jitter=options.jitter,
        n_start=n_start,
        maxiter=options.lbfgs_maxiter,
        seed=seed,
        executor=executor,
        chol_ranks=options.chol_ranks,
    )


def _make_sparse(n_tasks, n_dims, n_latent, n_start, seed, executor, options):
    from .sparse_lcm import SparseLCM

    return SparseLCM(
        n_tasks=n_tasks,
        n_dims=n_dims,
        n_latent=n_latent,
        n_inducing=options.n_inducing,
        jitter=options.jitter,
        n_start=n_start,
        maxiter=options.lbfgs_maxiter,
        seed=seed,
        executor=executor,
    )


def _make_gp(n_tasks, n_dims, n_latent, n_start, seed, executor, options):
    from .gp_backend import PerTaskGP

    return PerTaskGP(
        n_tasks=n_tasks,
        n_dims=n_dims,
        jitter=options.jitter,
        n_start=n_start,
        maxiter=options.lbfgs_maxiter,
        seed=seed,
    )


register_backend(
    BackendSpec(
        "exact-lcm",
        _make_exact,
        supports_theta=True,
        description="reference O(N³) multitask LCM (optional distributed Cholesky)",
    )
)
register_backend(
    BackendSpec(
        "sparse-lcm",
        _make_sparse,
        supports_theta=True,
        description="O(N·M²) shared-inducing-set Nyström/SoR LCM approximation",
    )
)
register_backend(
    BackendSpec(
        "gp",
        _make_gp,
        supports_theta=False,
        description="independent per-task GPs (no task coupling)",
    )
)
