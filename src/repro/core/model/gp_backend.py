"""Independent per-task GP backend.

The MLA driver has always had a per-task :class:`~repro.core.gp.GaussianProcess`
rung as the *degradation* target when the multitask fit breaks down
(:class:`~repro.core.mla.IndependentGPs`).  :class:`PerTaskGP` makes the
same surrogate a first-class, explicitly selectable backend
(``Options(model_backend="gp")``): no task coupling, O(Σ nᵢ³) fit over
much smaller per-task blocks, and the plain ``predict(task, Xstar)``
interface.  It deliberately has no ``predict_tasks`` (nothing is shared
across tasks to batch) and no flat ``theta`` (per-task hyperparameters are
not transferable to the LCM layout), so the driver's capability checks
route it to the sequential/executor search paths and skip the surrogate
cache.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..gp import GaussianProcess

__all__ = ["PerTaskGP"]


class PerTaskGP:
    """One independent :class:`GaussianProcess` per task.

    Per-task seeds derive deterministically from ``seed`` in task order, so
    a campaign consumes exactly one driver seed per fit regardless of the
    task count — the same contract the other backends honor.
    """

    def __init__(
        self,
        n_tasks: int,
        n_dims: int,
        jitter: float = 1e-8,
        n_start: int = 3,
        maxiter: int = 200,
        seed: Optional[int] = None,
    ):
        if n_tasks < 1 or n_dims < 1:
            raise ValueError("need n_tasks >= 1 and n_dims >= 1")
        self.n_tasks = int(n_tasks)
        self.n_dims = int(n_dims)
        self.jitter = float(jitter)
        self.n_start = int(n_start)
        self.maxiter = int(maxiter)
        self.seed = seed
        self.gps: List[Optional[GaussianProcess]] = [None] * self.n_tasks
        self.theta = None  # no shared flat θ — see module docstring
        self.log_likelihood_: float = -np.inf

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_index: Sequence[int],
        theta0=None,
    ) -> "PerTaskGP":
        """Fit each observed task's GP; ``theta0`` is accepted and ignored."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        tidx = np.asarray(task_index, dtype=int).ravel()
        if not (X.shape[0] == y.shape[0] == tidx.shape[0]):
            raise ValueError("X, y and task_index row counts differ")
        if X.shape[0] == 0:
            raise ValueError("no observations")
        if tidx.min() < 0 or tidx.max() >= self.n_tasks:
            raise ValueError("task_index out of range")
        rng = np.random.default_rng(self.seed)
        seeds = rng.integers(2**31, size=self.n_tasks)
        gps: List[Optional[GaussianProcess]] = []
        ll = 0.0
        for i in range(self.n_tasks):
            rows = tidx == i
            if not np.any(rows):
                gps.append(None)
                continue
            gp = GaussianProcess(
                jitter=self.jitter,
                n_start=self.n_start,
                maxiter=self.maxiter,
                seed=int(seeds[i]),
            )
            gp.fit(X[rows], y[rows])
            ll += float(gp.log_likelihood_)
            gps.append(gp)
        self.gps = gps
        self.log_likelihood_ = ll
        return self

    def predict(self, task: int, Xstar: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance from the task's own GP."""
        gp = self.gps[int(task)]
        if gp is None:
            raise RuntimeError(f"task {task} has no fitted surrogate")
        return gp.predict(Xstar)
