"""Command-line interface.

Exposes the library's common flows without writing Python, matching the
artifact appendix's "run one script, read Popt/Oopt" experience::

    python -m repro.cli list-apps
    python -m repro.cli tune --app analytical --tasks 0,2,4 --samples 20
    python -m repro.cli tune --app pdgeqrf --nodes 4 --samples 10 --seed 1
    python -m repro.cli tune --app hypre --samples 16 --checkpoint run.ck.json
    python -m repro.cli tune --app hypre --checkpoint run.ck.json --resume
    python -m repro.cli tune --app analytical --samples 16 --telemetry run.jsonl
    python -m repro.cli report run.jsonl --strict
    python -m repro.cli compare --app superlu_dist --samples 12
    python -m repro.cli sensitivity --app hypre --samples 16
    python -m repro.cli serve --root ./tuning-db --port 8577
    python -m repro.cli query --url http://localhost:8577 --problem hypre \
        --task '{"nx": 100, "ny": 100, "nz": 100}' -k 3

``tune`` prints the optimal configuration ("Popt") and objective ("Oopt")
per task plus the Tab. 3-style phase breakdown ("stats:").  With
``--checkpoint`` a resumable snapshot is written after every batch; a killed
campaign continues exactly where it stopped with ``--resume``.

``serve`` runs the shared tuning-history service over a sharded store
directory; ``tune --history URL_OR_PATH`` archives into (and warm-starts
from) a service, a store directory, or a legacy JSON file, so concurrent
campaigns crowd-tune against one database.  ``query`` asks an archive for
the tasks nearest to a given one (the transfer-learning source lookup).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

import numpy as np

from .apps import M3DC1, NIMROD, AnalyticalApp, HypreApp, PDGEQRF, PDSYEVX, SuperLUDIST
from .core import GPTune, Options, surrogate_sensitivity
from .core.metrics import mean_stability, win_task
from .core.model import available_backends
from .runtime import cori_haswell
from .tuners import HpBandSterTuner, OpenTunerTuner, RandomSearchTuner, YtoptTuner

__all__ = ["main", "build_app", "APPS"]

APPS = {
    "analytical": AnalyticalApp,
    "pdgeqrf": PDGEQRF,
    "pdsyevx": PDSYEVX,
    "superlu_dist": SuperLUDIST,
    "hypre": HypreApp,
    "m3dc1": M3DC1,
    "nimrod": NIMROD,
}


def build_app(name: str, nodes: int, seed: int):
    """Instantiate an application on an ``nodes``-node Cori model."""
    if name not in APPS:
        raise SystemExit(f"unknown app {name!r}; known: {', '.join(sorted(APPS))}")
    kwargs: Dict[str, Any] = {"machine": cori_haswell(nodes), "seed": seed}
    if name == "hypre":
        kwargs["solve_cap"] = 1000
    if name in ("m3dc1", "nimrod"):
        kwargs["plane_size"] = 300
    return APPS[name](**kwargs)


def _parse_tasks(app, spec: Optional[str], n_random: int, seed: int) -> List[Dict[str, Any]]:
    if spec:
        space = app.task_space()
        tasks = []
        for chunk in spec.split(";"):
            vals = [v.strip() for v in chunk.split(",")]
            coerced: List[Any] = []
            for v in vals:
                try:
                    coerced.append(int(v))
                except ValueError:
                    try:
                        coerced.append(float(v))
                    except ValueError:
                        coerced.append(v)
            tasks.append(space.to_dict(coerced))
        return tasks
    return app.sample_tasks(n_random, seed=seed)


def _cmd_list_apps(_args) -> int:
    for name, cls in sorted(APPS.items()):
        app = cls() if name != "hypre" else cls(solve_cap=512)
        print(f"{name:14s} β={app.tuning_space().dimension:<3} "
              f"tasks={app.task_space().names} γ={app.n_objectives}")
    return 0


def _archive_from(spec: str):
    """Resolve an archive spec: service URL, store directory, or legacy JSON."""
    if spec.startswith(("http://", "https://")):
        from .service import ServiceClient

        return ServiceClient(spec)
    if spec.endswith(".json"):
        from .core import HistoryDB

        return HistoryDB(spec)
    from .service import ShardedStore

    return ShardedStore(spec)


def _cmd_tune(args) -> int:
    app = build_app(args.app, args.nodes, args.seed)
    # async campaigns need an overlapping backend to stream; lockstep keeps
    # the serial default
    backend = args.backend or ("thread" if args.async_eval else "serial")
    try:
        opts = Options(
            seed=args.seed,
            n_start=args.n_start,
            verbose=args.verbose,
            checkpoint_path=args.checkpoint,
            retry_attempts=args.retries,
            eval_timeout=args.eval_timeout,
            model_cache_path=args.model_cache,
            telemetry=bool(args.telemetry),
            search_batched=not args.no_batched_search,
            search_backend=args.search_backend,
            backend=backend,
            async_eval=bool(args.async_eval),
            max_inflight=args.max_inflight,
            async_refit_secs=args.async_interval,
            allow_async_fallback=bool(args.allow_async_fallback),
            model_backend=args.model_backend,
            sparse_threshold=args.sparse_threshold,
            n_inducing=args.n_inducing,
        )
    except ValueError as e:
        raise SystemExit(str(e))
    problem = app.problem(with_models=args.models)
    if args.failure_value is not None:
        problem.failure_value = np.full(problem.n_objectives, float(args.failure_value))
    history = _archive_from(args.history) if args.history else None
    tuner = GPTune(problem, opts, history=history)
    sink = None
    if args.telemetry:
        from .runtime import JsonlEventWriter

        sink = JsonlEventWriter(args.telemetry)
        tuner.events.add_sink(sink)
    try:
        if args.resume:
            if not args.checkpoint:
                raise SystemExit("--resume requires --checkpoint PATH")
            if not os.path.exists(args.checkpoint):
                raise SystemExit(f"checkpoint {args.checkpoint!r} not found")
            try:
                result = tuner.resume(args.checkpoint)
            except ValueError as e:
                raise SystemExit(str(e))
            tasks = result.data.tasks
            print(
                f"resumed from {args.checkpoint}; campaign now has "
                f"{len(result.data)} evaluations"
            )
        else:
            tasks = _parse_tasks(app, args.tasks, args.random_tasks, args.seed)
            result = tuner.tune(tasks, args.samples)
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        print(f"telemetry: {sink.count} event(s) -> {args.telemetry}")
    for i, t in enumerate(tasks):
        cfg, val = result.best(i)
        print(f"task {json.dumps(t)}")
        print(f"  Popt: {json.dumps(cfg)}")
        print(f"  Oopt: {val:.6g}")
    s = result.stats
    print(
        f"stats: total {s['total_time']:.4g}  objective {s['objective_time']:.4g}  "
        f"modeling {s['modeling_time']:.4g}  search {s['search_time']:.4g}"
    )
    counts = result.events.counts()
    notable = {k: v for k, v in counts.items() if k != "checkpoint"}
    if notable:
        print("events: " + "  ".join(f"{k} {v}" for k, v in sorted(notable.items())))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(result.data.to_records(), fh, indent=2)
        print(f"archived {len(result.data)} evaluations to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    app = build_app(args.app, args.nodes, args.seed)
    tasks = _parse_tasks(app, args.tasks, args.random_tasks, args.seed)
    prob = app.problem()
    opts = Options(seed=args.seed, n_start=args.n_start)

    mla = GPTune(prob, opts).tune(tasks, args.samples)
    gpt = mla.best_values()
    gpt_traj = [[y[0] for y in mla.data.Y[i]] for i in range(len(tasks))]
    baselines = {
        "opentuner": OpenTunerTuner(),
        "hpbandster": HpBandSterTuner(),
        "ytopt": YtoptTuner(),
        "random": RandomSearchTuner(),
    }
    results = {"gptune": gpt}
    trajs = {"gptune": gpt_traj}
    for name, tuner in baselines.items():
        recs = [tuner.tune(prob, t, args.samples, seed=args.seed + 37 + i)
                for i, t in enumerate(tasks)]
        results[name] = np.array([r.best()[1] for r in recs])
        trajs[name] = [r.values[:, 0] for r in recs]

    y_star = np.min(np.vstack(list(results.values())), axis=0)
    print(f"{'tuner':>12} {'mean best':>12} {'WinTask(GPTune vs)':>20} {'stability':>10}")
    for name, best in results.items():
        wt = "-" if name == "gptune" else f"{100 * win_task(gpt, best):.0f}%"
        stab = mean_stability(trajs[name], y_star)
        print(f"{name:>12} {float(np.mean(best)):>12.5g} {wt:>20} {stab:>10.3f}")
    return 0


def _cmd_sensitivity(args) -> int:
    app = build_app(args.app, args.nodes, args.seed)
    tasks = _parse_tasks(app, args.tasks, 1, args.seed)
    opts = Options(seed=args.seed, n_start=args.n_start)
    result = GPTune(app.problem(), opts).tune(tasks[:1], args.samples)
    sens = surrogate_sensitivity(result.models[0], result.data, task=0, seed=args.seed)
    print(f"sensitivity for task {json.dumps(tasks[0])} ({args.samples} samples):")
    print(f"{'parameter':>18} {'S1':>8} {'ST':>8}")
    for name, idx in sens.items():
        print(f"{name:>18} {idx['S1']:>8.3f} {idx['ST']:>8.3f}")
    return 0


def _cmd_report(args) -> int:
    """Render the Table-3-style phase report from a telemetry JSONL export."""
    from .reporting import render_campaign_report
    from .runtime.trace import CampaignLog

    if not os.path.exists(args.path):
        raise SystemExit(f"telemetry file {args.path!r} not found")
    try:
        log = CampaignLog.load_jsonl(args.path)
    except ValueError as e:
        raise SystemExit(str(e))
    text, ok = render_campaign_report(log, tolerance=args.tolerance)
    print(text)
    if args.strict and not ok:
        print("report: FAIL (span totals disagree with the campaign stats)")
        return 1
    return 0


def _cmd_query(args) -> int:
    if bool(args.url) == bool(args.root):
        raise SystemExit("query needs exactly one of --url or --root")
    archive = _archive_from(args.url or args.root)
    if not args.problem:
        stats = (
            archive.stats()
            if hasattr(archive, "stats")
            else {"problems": {p: {"count": archive.count(p)} for p in archive.problems()}}
        )
        for name, info in sorted(stats["problems"].items()):
            etag = info.get("etag", "")
            print(f"{name:20s} {info['count']:>8} record(s)  {etag[:12]}")
        if not stats["problems"]:
            print("(archive is empty)")
        return 0
    if not args.task:
        print(f"{args.problem}: {archive.count(args.problem)} record(s)")
        return 0
    try:
        task = json.loads(args.task)
        if not isinstance(task, dict):
            raise ValueError("not an object")
    except ValueError as e:
        raise SystemExit(f"--task must be a JSON object: {e}")
    from .service.query import nearest_tasks

    matches = nearest_tasks(archive.records(args.problem), task, k=args.k)
    if not matches:
        print(f"{args.problem}: no archived tasks")
        return 0
    for t, recs, d in matches:
        ys = [r["y"][0] for r in recs]
        print(
            f"task {json.dumps(t)}  distance {d:.4g}  "
            f"{len(recs)} record(s)  best {min(ys):.6g}"
        )
    return 0


def _cmd_serve(args) -> int:
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    server_kwargs = {
        "batch": not args.no_batch,
        "flush_interval": args.flush_interval,
        "flush_bytes": args.flush_bytes,
        "max_pending": args.max_pending,
        "max_inflight": args.max_inflight,
    }
    if args.shards == 1:
        from .service import serve

        serve(
            args.root,
            args.host,
            args.port,
            verbose=not args.quiet,
            cache_bytes=args.cache_bytes,
            **server_kwargs,
        )
        return 0

    from .service import ShardSupervisor

    server_kwargs["cache_bytes"] = args.cache_bytes
    server_kwargs["verbose"] = not args.quiet
    with ShardSupervisor(
        args.root, args.shards, host=args.host, server_kwargs=server_kwargs
    ) as sup:
        topo_url = sup.serve_topology(port=args.port)
        print(f"topology  {topo_url}/v1/topology")
        for sid, url in sorted(sup.topology()["shards"].items()):
            print(f"{sid:10s} {url}")
        print(f"routing: RouterClient({topo_url!r})", flush=True)
        sup.watch()
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list tunable applications")

    def common(p):
        p.add_argument("--app", required=True, choices=sorted(APPS))
        p.add_argument("--tasks", help="semicolon-separated task tuples, e.g. '4000,4000;8000,2000'")
        p.add_argument("--random-tasks", type=int, default=2, help="random task count when --tasks absent")
        p.add_argument("--samples", type=int, default=10, help="ε_tot per task")
        p.add_argument("--nodes", type=int, default=1, help="Cori nodes in the machine model")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--n-start", type=int, default=2, help="L-BFGS restarts")

    p_tune = sub.add_parser("tune", help="run multitask MLA")
    common(p_tune)
    p_tune.add_argument("--models", action="store_true", help="attach coarse performance models")
    p_tune.add_argument("--verbose", action="store_true")
    p_tune.add_argument("--output", help="archive evaluations to a JSON file")
    p_tune.add_argument(
        "--checkpoint", help="write a resumable campaign checkpoint to this path"
    )
    p_tune.add_argument(
        "--resume", action="store_true",
        help="continue a killed campaign from --checkpoint "
             "(tasks and --samples come from the checkpoint)",
    )
    p_tune.add_argument(
        "--retries", type=int, default=1,
        help="attempts per evaluation (crashes/NaN/timeouts are retried)",
    )
    p_tune.add_argument(
        "--eval-timeout", type=float,
        help="per-evaluation timeout in seconds",
    )
    p_tune.add_argument(
        "--failure-value", type=float,
        help="penalty objective value recorded when an evaluation still "
             "fails after --retries attempts (default: abort the run)",
    )
    p_tune.add_argument(
        "--history",
        help="shared archive to load from and append to: a service URL "
             "(http://...), a sharded store directory, or a legacy *.json file",
    )
    p_tune.add_argument(
        "--model-cache",
        help="surrogate-cache file; campaigns sharing it warm-start the "
             "modeling phase from each other's fitted hyperparameters",
    )
    p_tune.add_argument(
        "--telemetry", metavar="PATH",
        help="record timestamped phase/model spans and stream every campaign "
             "event to this JSONL file (render it with 'repro report PATH')",
    )
    p_tune.add_argument(
        "--model-backend", default="auto",
        choices=("auto",) + available_backends(),
        help="surrogate backend for the modeling phase: 'auto' escalates "
             "from the exact LCM to the sparse inducing-point LCM past "
             "--sparse-threshold observations (default: auto)",
    )
    p_tune.add_argument(
        "--sparse-threshold", type=int, default=512, metavar="N",
        help="observation count past which 'auto' switches to the sparse "
             "backend (default: 512)",
    )
    p_tune.add_argument(
        "--n-inducing", type=int, default=128, metavar="M",
        help="inducing-set size of the sparse backend (default: 128)",
    )
    p_tune.add_argument(
        "--no-batched-search", action="store_true",
        help="disable the lockstep cross-task batched search phase and use "
             "the per-task reference loop (or --search-backend)",
    )
    p_tune.add_argument(
        "--search-backend", default="serial",
        choices=("serial", "thread", "process"),
        help="executor dispatching whole per-task searches when batching is "
             "off or impossible (default: serial)",
    )
    p_tune.add_argument(
        "--async", dest="async_eval", action="store_true",
        help="stream evaluations through the asynchronous queue instead of "
             "the lockstep loop: completions are absorbed as they land and "
             "stragglers no longer stall the other tasks (see docs/ASYNC.md)",
    )
    p_tune.add_argument(
        "--max-inflight", type=int, metavar="N",
        help="cap on concurrently outstanding evaluations with --async "
             "(default: max(2, workers))",
    )
    p_tune.add_argument(
        "--async-interval", type=float, metavar="SECS",
        help="with --async, refit/extend the surrogate at most once per "
             "SECS seconds instead of before every fill round (default: "
             "every round)",
    )
    p_tune.add_argument(
        "--allow-async-fallback", action="store_true",
        help="with --async, run campaign shapes the streaming loop does not "
             "support through the lockstep loop (recording an "
             "'async-fallback' event) instead of failing fast",
    )
    p_tune.add_argument(
        "--backend", default=None,
        choices=("serial", "thread", "process"),
        help="evaluation backend; with --async the default becomes 'thread' "
             "so evaluations actually overlap",
    )

    p_cmp = sub.add_parser("compare", help="GPTune vs baseline tuners")
    common(p_cmp)

    p_sens = sub.add_parser("sensitivity", help="Sobol indices of the fitted surrogate")
    common(p_sens)

    p_serve = sub.add_parser("serve", help="run the shared tuning-history service")
    p_serve.add_argument("--root", required=True, help="sharded store directory")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8577)
    p_serve.add_argument("--quiet", action="store_true", help="suppress request logging")
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="backend server processes behind a consistent-hash topology; "
             "with N>1 the --port serves GET /v1/topology for RouterClient "
             "bootstrap and each shard stores under <root>/shard-NN/",
    )
    p_serve.add_argument(
        "--flush-interval", type=float, default=0.005,
        help="group-commit window in seconds (0 flushes every submit)",
    )
    p_serve.add_argument(
        "--flush-bytes", type=int, default=256 * 1024,
        help="flush a shard's write queue early past this many queued bytes",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=4096,
        help="queued-but-unflushed record bound before appends get 429",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="concurrently handled request bound before requests get 429",
    )
    p_serve.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        help="hot-shard read cache budget in bytes (0 disables)",
    )
    p_serve.add_argument(
        "--no-batch", action="store_true",
        help="disable write batching (one lock+fsync per append, seed path)",
    )

    p_report = sub.add_parser(
        "report", help="phase-time breakdown from a --telemetry JSONL export"
    )
    p_report.add_argument("path", help="telemetry JSONL written by 'repro tune --telemetry'")
    p_report.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when span totals disagree with the campaign "
             "stats by more than --tolerance",
    )
    p_report.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative tolerance of the consistency gate (default 0.05)",
    )

    p_query = sub.add_parser("query", help="inspect an archive / nearest-task lookup")
    p_query.add_argument(
        "--url", help="service URL (mutually exclusive with --root)"
    )
    p_query.add_argument("--root", help="local store directory or legacy *.json file")
    p_query.add_argument("--problem", help="problem name to query")
    p_query.add_argument(
        "--task", help='query task as a JSON object, e.g. \'{"t": 2.5}\''
    )
    p_query.add_argument("-k", type=int, default=3, help="number of nearest tasks")

    args = parser.parse_args(argv)
    if args.command == "list-apps":
        return _cmd_list_apps(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "query":
        return _cmd_query(args)
    raise AssertionError  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
