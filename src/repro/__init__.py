"""repro — a from-scratch reproduction of GPTune (PPoPP 2021).

GPTune is a multitask-learning Bayesian-optimization autotuner for exascale
applications.  This package implements the full system described in the
paper — the Linear Coregionalization Model surrogate, the MLA driver
(single- and multi-objective), coarse performance-model incorporation, a
(simulated) distributed-memory parallel runtime, the evaluated HPC
application substrates, and the OpenTuner/HpBandSter baseline tuners.

Quickstart::

    from repro import GPTune, Options
    from repro.apps.analytical import AnalyticalApp

    app = AnalyticalApp()
    tuner = GPTune(app.problem(), Options(seed=0))
    result = tuner.tune(tasks=[{"t": 2.0}], n_samples=20)
    print(result.best(0))
"""

from .core import (
    Categorical,
    Constraint,
    GaussianProcess,
    GPTune,
    HistoryDB,
    Integer,
    LCM,
    Options,
    Real,
    Space,
    TransferLearner,
    TuneResult,
    TuningData,
    TuningProblem,
    surrogate_sensitivity,
)
from .service import ServiceClient, ShardedStore, SurrogateCache

__version__ = "1.0.0"

__all__ = [
    "ServiceClient",
    "ShardedStore",
    "SurrogateCache",
    "Categorical",
    "Constraint",
    "GaussianProcess",
    "GPTune",
    "HistoryDB",
    "Integer",
    "LCM",
    "Options",
    "Real",
    "Space",
    "TransferLearner",
    "TuneResult",
    "TuningData",
    "TuningProblem",
    "__version__",
    "surrogate_sensitivity",
]
